package solver

import (
	"errors"
	"math"
	"sort"
	"strings"
	"testing"

	"sherlock/internal/lp"
	"sherlock/internal/trace"
	"sherlock/internal/window"
)

// growRound appends a batch of windows to o, the way a Perturber round
// does. Round r introduces one new field key and reuses earlier ones, so
// successive problems share most of their structure.
func growRound(o *window.Observations, r int) {
	f := func(i int) string { return "C::f" + string(rune('a'+i%8)) }
	var ws []window.Window
	for i := 0; i < 3; i++ {
		ws = append(ws, window.Window{
			Pair:      window.PairID{First: 100*r + 2*i + 1, Second: 100*r + 2*i + 2},
			RelEvents: cands(wk(f(r+i)), bk("C::m"+string(rune('a'+r%4)))),
			AcqEvents: cands(rk(f(r+i)), rk(f(i))),
		})
	}
	o.AddWindows(ws)
}

// TestEncoderMatchesOneShot grows an accumulator over several rounds and
// checks, each round, that the persistent warm-starting Encoder and a fresh
// one-shot Solve agree exactly: same sync sets, same probabilities, and
// objectives within 1e-6.
func TestEncoderMatchesOneShot(t *testing.T) {
	cfg := DefaultConfig()
	o := window.NewObservations(window.DefaultConfig())
	enc := NewEncoder(cfg)
	var basis *lp.Basis
	warmRounds := 0
	for r := 0; r < 6; r++ {
		growRound(o, r)
		inc, b, err := enc.Solve(o, basis)
		if err != nil {
			t.Fatalf("round %d: encoder solve: %v", r, err)
		}
		basis = b
		fresh := solveOK(t, o, cfg)
		if inc.WarmStarted {
			warmRounds++
		}
		if math.Abs(inc.Objective-fresh.Objective) > 1e-6 {
			t.Fatalf("round %d: encoder obj %v, fresh obj %v", r, inc.Objective, fresh.Objective)
		}
		assertSameSets(t, r, inc, fresh)
		for k, p := range fresh.Acquires {
			if math.Abs(inc.Acquires[k]-p) > 1e-6 {
				t.Fatalf("round %d: acquire prob for %s: encoder %v, fresh %v", r, k, inc.Acquires[k], p)
			}
		}
		for k, p := range fresh.Releases {
			if math.Abs(inc.Releases[k]-p) > 1e-6 {
				t.Fatalf("round %d: release prob for %s: encoder %v, fresh %v", r, k, inc.Releases[k], p)
			}
		}
	}
	if warmRounds == 0 {
		t.Fatal("warm start never engaged across 6 growing rounds")
	}
}

func assertSameSets(t *testing.T, round int, a, b *Result) {
	t.Helper()
	if !equalKeys(a.AcquireSet, b.AcquireSet) {
		t.Fatalf("round %d: acquire sets differ: %v vs %v", round, a.AcquireSet, b.AcquireSet)
	}
	if !equalKeys(a.ReleaseSet, b.ReleaseSet) {
		t.Fatalf("round %d: release sets differ: %v vs %v", round, a.ReleaseSet, b.ReleaseSet)
	}
}

func equalKeys(a, b []trace.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEncoderRetiresRacyRows marks a pair racy between rounds and checks
// the Encoder still matches the one-shot path (rows retired at emit time).
func TestEncoderRetiresRacyRows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KeepRacyWindows = false
	o := window.NewObservations(window.DefaultConfig())
	enc := NewEncoder(cfg)
	o.AddWindows([]window.Window{{
		Pair:      window.PairID{First: 1, Second: 2},
		RelEvents: cands(wk("C::x"), bk("C::m")),
		AcqEvents: cands(rk("C::x")),
	}})
	first, basis, err := enc.Solve(o, nil)
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}
	// Round 2: the same pair produces a racy (all-read release side)
	// window, retiring both of its accumulated MP row groups.
	o.AddWindows([]window.Window{{
		Pair:      window.PairID{First: 1, Second: 2},
		RelEvents: cands(rk("C::y")),
		AcqEvents: cands(rk("C::x")),
	}, {
		Pair:      window.PairID{First: 3, Second: 4},
		RelEvents: cands(wk("C::z")),
		AcqEvents: cands(rk("C::z")),
	}})
	inc, _, err := enc.Solve(o, basis)
	if err != nil {
		t.Fatalf("round 2: %v", err)
	}
	fresh := solveOK(t, o, cfg)
	assertSameSets(t, 2, inc, fresh)
	if math.Abs(inc.Objective-fresh.Objective) > 1e-6 {
		t.Fatalf("round 2: encoder obj %v, fresh obj %v", inc.Objective, fresh.Objective)
	}
	_ = first
}

// TestEncoderDetectsReset swaps in a brand-new accumulator (the engine's
// no-accumulation mode) and checks the cache rebuilds instead of mixing
// stale windows in.
func TestEncoderDetectsReset(t *testing.T) {
	cfg := DefaultConfig()
	enc := NewEncoder(cfg)
	o1 := obsWith(window.Window{
		RelEvents: cands(wk("C::a")),
		AcqEvents: cands(rk("C::a")),
	})
	if _, _, err := enc.Solve(o1, nil); err != nil {
		t.Fatal(err)
	}
	o2 := obsWith(window.Window{
		RelEvents: cands(wk("C::b")),
		AcqEvents: cands(rk("C::b")),
	})
	inc, _, err := enc.Solve(o2, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh := solveOK(t, o2, cfg)
	assertSameSets(t, 0, inc, fresh)
	if _, stale := inc.Releases[wk("C::a")]; stale {
		t.Fatal("stale key from previous accumulator leaked into reset encoder")
	}
}

// TestIterationLimitSurfaced checks that a too-small pivot budget is
// reported as a wrapped lp.ErrIterationLimit carrying the problem
// dimensions, not returned as a silent suboptimal vertex.
func TestIterationLimitSurfaced(t *testing.T) {
	o := window.NewObservations(window.DefaultConfig())
	for r := 0; r < 4; r++ {
		growRound(o, r)
	}
	cfg := DefaultConfig()
	cfg.MaxLPIters = 1
	_, err := Solve(o, cfg)
	if err == nil {
		t.Fatal("expected iteration-limit error, got nil")
	}
	if !errors.Is(err, lp.ErrIterationLimit) {
		t.Fatalf("error does not wrap lp.ErrIterationLimit: %v", err)
	}
	if !errors.Is(err, lp.ErrNotOptimal) {
		t.Fatalf("error does not wrap lp.ErrNotOptimal: %v", err)
	}
	if !strings.Contains(err.Error(), "vars") || !strings.Contains(err.Error(), "constraints") {
		t.Fatalf("error lacks problem-size context: %v", err)
	}
}

// TestSortedUniqueKeys pins the map-free dedup helper against the obvious
// map-based reference.
func TestSortedUniqueKeys(t *testing.T) {
	evs := cands(wk("C::b"), wk("C::a"), wk("C::b"), rk("C::a"), wk("C::a"))
	got := sortedUniqueKeys(evs)
	ref := map[trace.Key]bool{}
	for _, e := range evs {
		ref[e.Key] = true
	}
	want := make([]trace.Key, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !equalKeys(got, want) {
		t.Fatalf("sortedUniqueKeys = %v, want %v", got, want)
	}
	if sortedUniqueKeys(nil) != nil {
		t.Fatal("empty input must return nil")
	}
}
