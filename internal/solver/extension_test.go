package solver

import (
	"testing"

	"sherlock/internal/trace"
	"sherlock/internal/window"
)

// Soft Single-Role (the paper's Section 5.5 future-work extension): with
// strong evidence for both roles of one API, the hard constraint forfeits
// one of them; the soft constraint pays the λ penalty and keeps both.
func TestSoftSingleRoleRecoversDoubleRole(t *testing.T) {
	api := "Lib::UpgradeToWriterLock"
	o := window.NewObservations(window.DefaultConfig())
	var ws []window.Window
	// Strong evidence: several independent windows demand each role.
	for i := 0; i < 4; i++ {
		ws = append(ws,
			window.Window{Pair: window.PairID{First: 10 + i, Second: 20 + i},
				RelEvents: cands(ek(api)), AcqEvents: cands(rk("C::f"))},
			window.Window{Pair: window.PairID{First: 30 + i, Second: 40 + i},
				RelEvents: cands(wk("C::f")), AcqEvents: cands(bk(api))},
		)
	}
	o.AddWindows(ws)
	o.AddTraceStats(&trace.Trace{Events: []trace.Event{
		{Time: 1, Kind: trace.KindBegin, Name: api, Lib: true},
		{Time: 2, Kind: trace.KindEnd, Name: api, Lib: true},
	}})

	// Hard constraint: at most one role.
	hard := solveOK(t, o, DefaultConfig())
	bothHard := hard.Acquires[bk(api)] >= 0.9 && hard.Releases[ek(api)] >= 0.9
	if bothHard {
		t.Fatal("hard Single-Role should forbid the double role")
	}

	// Soft constraint: both roles survive.
	cfg := DefaultConfig()
	cfg.SoftSingleRole = true
	soft := solveOK(t, o, cfg)
	if soft.Acquires[bk(api)] < 0.9 || soft.Releases[ek(api)] < 0.9 {
		t.Errorf("soft Single-Role should keep both roles: acq=%v rel=%v",
			soft.Acquires[bk(api)], soft.Releases[ek(api)])
	}
}

// With weak evidence, the soft constraint still behaves like Single-Role:
// the λ penalty outweighs a single marginal window.
func TestSoftSingleRoleStillRegularizes(t *testing.T) {
	api := "Lib::Op"
	o := window.NewObservations(window.DefaultConfig())
	// Both roles fully determined elsewhere; the API appears once per side
	// alongside a cheaper alternative.
	o.AddWindows([]window.Window{
		{Pair: window.PairID{First: 1, Second: 2},
			RelEvents: cands(ek(api), wk("C::v")), AcqEvents: cands(rk("C::v"))},
		{Pair: window.PairID{First: 3, Second: 4},
			RelEvents: cands(wk("C::v")), AcqEvents: cands(bk(api), rk("C::v"))},
	})
	o.AddTraceStats(&trace.Trace{Events: []trace.Event{
		{Time: 1, Kind: trace.KindBegin, Name: api, Lib: true},
		{Time: 2, Kind: trace.KindEnd, Name: api, Lib: true},
	}})
	cfg := DefaultConfig()
	cfg.SoftSingleRole = true
	r := solveOK(t, o, cfg)
	if r.Acquires[bk(api)] >= 0.9 && r.Releases[ek(api)] >= 0.9 {
		t.Error("weakly supported API should not claim both roles even under the soft constraint")
	}
}
