package solver

import "sherlock/internal/trace"

// Priors are soft per-role beliefs about which candidate operations are
// synchronization, fed into the objective as a discount on the
// Syncs-are-Rare penalty (Eq. 3–4): a candidate believed to be an acquire
// with probability p pays (1 − Weight·p) of its usual rareness cost for
// that role. The hypothesis stays active — priors tilt it, they never
// override window evidence, and a zero prior leaves the cost untouched.
//
// Two producers exist: internal/static derives priors from program
// structure alone (the "Static SherLock" pre-pass), and core.
// PriorsFromResult recycles a previous campaign's solved posteriors (the
// refine mode). Consumers set them for the first solve of a campaign only:
// once dynamic windows accumulate, the evidence supersedes the prior.
type Priors struct {
	// Acquires / Releases map candidate keys to belief in [0, 1] that the
	// key serves that role. Missing keys mean zero belief.
	Acquires map[trace.Key]float64
	Releases map[trace.Key]float64
	// Weight caps the discount a full-confidence prior earns, in [0, 1).
	// Zero selects DefaultPriorWeight. Keeping it well below 1 bounds how
	// far a wrong prior can tilt the objective: even at belief 1 the
	// rareness cost only shrinks by Weight, it never reaches zero.
	Weight float64
}

// DefaultPriorWeight is the discount cap used when Priors.Weight is zero:
// strong enough to steer tie-breaks and speed convergence, weak enough
// that one window of contrary dynamic evidence outvotes a wrong prior.
const DefaultPriorWeight = 0.4

// resolvedWeight returns the effective discount cap.
func (p *Priors) resolvedWeight() float64 {
	if p.Weight == 0 {
		return DefaultPriorWeight
	}
	return p.Weight
}

// discount returns the multiplicative rareness-cost factor for belief b,
// clamping stray inputs into [0, 1] so a malformed prior can never turn a
// penalty into a reward.
func (p *Priors) discount(b float64) float64 {
	if b <= 0 {
		return 1
	}
	if b > 1 {
		b = 1
	}
	return 1 - p.resolvedWeight()*b
}

// SetPriors installs (or, with nil, removes) objective priors for
// subsequent solves. The encoder's window/key caches are unaffected —
// priors only change objective coefficients — so flipping priors between
// rounds composes with incremental encoding and basis carrying: the dual
// simplex re-optimizes the revised objective from the prior basis, or the
// LP falls back to a cold solve, either way landing on the new optimum.
func (e *Encoder) SetPriors(p *Priors) { e.priors = p }
