// Package solver encodes SherLock's synchronization properties and
// hypotheses (paper Section 2) over accumulated observations as a linear
// program (Section 4.2, Eq. 1–8) and interprets the optimum as
// acquire/release probabilities per candidate operation.
//
// Hard constraints (properties):
//
//   - Read-Acquire & Write-Release: read^rel = write^acq = begin^rel =
//     end^acq = 0. Implemented by not creating those variables at all; the
//     Table 5 ablation re-creates them (plus the role-exclusivity
//     constraint acq+rel ≤ 1 the paper states alongside).
//   - Single Role: a library API serves one synchronization role:
//     begin(l)^acq + end(l)^rel ≤ 1.
//
// Soft constraints (hypotheses), as objective penalties:
//
//   - Mostly Protected (Eq. 2): per window, ε ≥ 1 − Σ role-capable vars,
//     minimize ε (weight 1).
//   - Synchronizations are Rare (Eq. 3, 4): λ·(v + 0.1·avgOcc(v)·v).
//   - Acquisition-Time Mostly Varies (Eq. 5): λ·(1 − pct(CV(dur)))·begin^acq.
//   - Mostly Paired (Eq. 6, 7): λ·|Σ acq − Σ rel| per class (methods) and
//     λ·|read(f)^acq − write(f)^rel| per field.
//
// λ scales everything except Mostly-Protected (Table 6's behaviour: larger
// λ ⇒ Mostly-Protected loses relative weight ⇒ fewer inferred syncs).
//
// Because the Perturber loop re-solves a problem that only grows between
// rounds, the package offers two entrypoints: the one-shot Solve, and a
// stateful Encoder that caches the per-window work across rounds and
// carries the previous optimal basis into the next solve (warm starting).
// Both produce the identical linear program for the same Observations, so
// their results agree — the Encoder is purely a performance device.
package solver

import (
	"fmt"
	"slices"
	"sort"

	"sherlock/internal/lp"
	obslib "sherlock/internal/obs" // aliased: "obs" names Observations locals here
	"sherlock/internal/trace"
	"sherlock/internal/window"
)

// Hypotheses toggles each property/hypothesis for the Table 5 ablation.
type Hypotheses struct {
	MostlyProtected bool
	SyncsAreRare    bool
	AcqTimeVaries   bool
	MostlyPaired    bool
	ReadAcqWriteRel bool
	SingleRole      bool
}

// AllHypotheses enables everything (SherLock's default).
func AllHypotheses() Hypotheses {
	return Hypotheses{
		MostlyProtected: true,
		SyncsAreRare:    true,
		AcqTimeVaries:   true,
		MostlyPaired:    true,
		ReadAcqWriteRel: true,
		SingleRole:      true,
	}
}

// ObjectiveWeights scales the soft-constraint penalties per role. The
// paper weighs acquire and release evidence identically; in practice the
// two roles have different base rates (every criticial section has one
// acquire but finalizers/defers skew releases), and a deployment that
// cares more about precision on one role can raise that role's weight to
// demand stronger evidence before inferring it. A zero field means 1.0
// (the paper's weighting), so the zero value is the default behaviour.
//
// The weights multiply only the real penalty terms (Syncs-are-Rare and
// Acquisition-Time-Mostly-Varies); the 1e-6 name-hashed tie-break costs
// are deliberately left unscaled so that tied optima keep resolving to
// the same vertex regardless of weighting — the incremental-inference
// byte-identity contract does not depend on ObjectiveWeights.
type ObjectiveWeights struct {
	Acquire float64
	Release float64
}

// Resolved returns the effective weights with zero fields mapped to the
// 1.0 default — the canonical form config hashes should use, so that
// every spelling of the same effective weighting hashes identically.
func (w ObjectiveWeights) Resolved() ObjectiveWeights {
	if w.Acquire == 0 {
		w.Acquire = 1
	}
	if w.Release == 0 {
		w.Release = 1
	}
	return w
}

// IsDefault reports whether the weights are equivalent to the paper's
// uniform weighting (so config hashes can omit them).
func (w ObjectiveWeights) IsDefault() bool {
	r := w.Resolved()
	return r.Acquire == 1 && r.Release == 1
}

// Config tunes the encoding.
type Config struct {
	// Lambda trades Mostly-Protected off against all other hypotheses
	// (paper default 0.2; Table 6 sweeps it).
	Lambda float64
	// RareCoef is Eq. 4's 0.1 coefficient.
	RareCoef float64
	// Threshold is the probability at which a variable counts as a
	// synchronization ("assigned 1" in the paper; vertex solutions are
	// near-integral, 0.9 tolerates rounding).
	Threshold float64
	// Hyp selects active hypotheses.
	Hyp Hypotheses
	// KeepRacyWindows disables the data-race-observation feedback: windows
	// from racy pairs keep their Mostly-Protected terms (Figure 4's "no
	// race removal" line).
	KeepRacyWindows bool
	// SoftSingleRole turns the Single-Role property into a soft constraint
	// (penalty λ·max(0, begin^acq + end^rel − 1)) instead of a hard one —
	// the extension the paper proposes in Section 5.5 to recover
	// double-role APIs like UpgradeToWriterLock.
	SoftSingleRole bool
	// MaxLPIters bounds the simplex pivots per solve (0 = lp's default).
	// Exhausting it is an error carrying the problem dimensions, wrapped
	// around lp.ErrIterationLimit — never a silent suboptimal result.
	MaxLPIters int
	// Weights scales the per-role penalty costs (zero value = the paper's
	// uniform weighting; see ObjectiveWeights).
	Weights ObjectiveWeights
	// Parallelism caps the workers the LP may use to solve independent
	// connected components of one problem concurrently (≤1 = sequential).
	// Results are bit-identical at any setting, so this is a pure
	// performance knob and excluded from config signatures.
	Parallelism int
}

// DefaultConfig mirrors the paper's defaults.
func DefaultConfig() Config {
	return Config{Lambda: 0.2, RareCoef: 0.1, Threshold: 0.9, Hyp: AllHypotheses()}
}

// Result is the solved inference state.
type Result struct {
	// Acquires / Releases map every candidate to its solved probability of
	// serving that role.
	Acquires map[trace.Key]float64
	Releases map[trace.Key]float64
	// AcquireSet / ReleaseSet are the keys at/above Threshold, sorted.
	AcquireSet []trace.Key
	ReleaseSet []trace.Key
	// Objective is the LP optimum; Vars/Constraints/Iters describe problem
	// size (overhead reporting).
	Objective   float64
	Vars        int
	Constraints int
	Iters       int
	// DualIters is the subset of Iters spent in dual-simplex re-optimization
	// of a carried basis (zero on cold solves).
	DualIters int
	// Components is the number of independent LP blocks the problem split
	// into; RowsPresolved/ColsPresolved count what presolve eliminated
	// before any pivoting.
	Components    int
	RowsPresolved int
	ColsPresolved int
	// WarmStarted reports whether the LP reused the previous round's basis
	// (Encoder path only; always false for one-shot Solve).
	WarmStarted bool
}

// Syncs returns the union of inferred acquire and release keys with roles.
func (r *Result) Syncs() map[trace.Key]trace.Role {
	out := map[trace.Key]trace.Role{}
	for _, k := range r.AcquireSet {
		out[k] = trace.RoleAcquire
	}
	for _, k := range r.ReleaseSet {
		out[k] = trace.RoleRelease
	}
	return out
}

// IsRelease reports whether the solver currently believes key is a release
// (Perturber input).
func (r *Result) IsRelease(k trace.Key) bool {
	return r.Releases[k] >= 0.9
}

// varPair holds the per-key LP variable ids (−1 when the role variable does
// not exist under the Read-Acquire & Write-Release property).
type varPair struct {
	acq, rel int
}

// Encoder incrementally encodes a growing Observations accumulator across
// Perturber rounds. It caches the per-window derived data (sorted unique
// candidate key lists) keyed by the window's absolute index in
// obs.Windows — valid because the accumulator only ever appends windows —
// and the global candidate key set, ingesting only the delta since the
// previous round. Racy-pair rows are retired at emit time, so a pair
// turning racy in a later round drops its Mostly-Protected rows without
// disturbing the cache.
//
// Each Solve rebuilds the lp.Problem in exactly the order a fresh encode
// would, so a persistent Encoder and a fresh one produce the identical
// program; all rows and variables carry names stable across rounds, which
// is what lets the previous round's optimal basis map onto the next
// round's problem.
//
// An Encoder is not safe for concurrent use. The zero value is not usable;
// construct with NewEncoder.
type Encoder struct {
	cfg    Config
	priors *Priors // nil = no objective priors (see SetPriors)

	lastObs *window.Observations // accumulator the cache was built from
	nCached int                  // windows ingested so far

	winRel [][]trace.Key // per absolute window index: sorted unique rel keys
	winAcq [][]trace.Key
	keys   []trace.Key // all candidate keys, sorted
	keySet map[trace.Key]bool
}

// NewEncoder returns an empty Encoder for cfg.
func NewEncoder(cfg Config) *Encoder {
	return &Encoder{cfg: cfg, keySet: map[trace.Key]bool{}}
}

// Reset drops all cached state, as after construction. The engine calls it
// when the Observations accumulator itself restarts (no-accumulation mode);
// Solve also detects that case on its own.
func (e *Encoder) Reset() {
	e.lastObs = nil
	e.nCached = 0
	e.winRel = e.winRel[:0]
	e.winAcq = e.winAcq[:0]
	e.keys = e.keys[:0]
	e.keySet = map[trace.Key]bool{}
}

// sync ingests windows appended to obs since the previous round. A
// different accumulator, or one with fewer windows than already cached,
// invalidates the cache entirely.
func (e *Encoder) sync(obs *window.Observations) {
	if e.lastObs != obs || len(obs.Windows) < e.nCached {
		e.Reset()
	}
	e.lastObs = obs
	newKeys := false
	for wi := e.nCached; wi < len(obs.Windows); wi++ {
		w := &obs.Windows[wi]
		rel := sortedUniqueKeys(w.RelEvents)
		acq := sortedUniqueKeys(w.AcqEvents)
		e.winRel = append(e.winRel, rel)
		e.winAcq = append(e.winAcq, acq)
		for _, k := range rel {
			if !e.keySet[k] {
				e.keySet[k] = true
				e.keys = append(e.keys, k)
				newKeys = true
			}
		}
		for _, k := range acq {
			if !e.keySet[k] {
				e.keySet[k] = true
				e.keys = append(e.keys, k)
				newKeys = true
			}
		}
	}
	e.nCached = len(obs.Windows)
	if newKeys {
		slices.Sort(e.keys)
	}
}

// sortedUniqueKeys returns the distinct keys of evs in sorted order without
// allocating a map.
func sortedUniqueKeys(evs []window.CandEvent) []trace.Key {
	if len(evs) == 0 {
		return nil
	}
	keys := make([]trace.Key, len(evs))
	for i, e := range evs {
		keys[i] = e.Key
	}
	slices.Sort(keys)
	out := keys[:1]
	for _, k := range keys[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// Solve encodes obs — reusing everything cached from previous rounds — and
// solves it, warm-started from warm when non-nil. It returns the result
// and the optimal basis to pass into the next round's Solve. Passing a
// stale or nil basis is always safe: the LP falls back to a cold start.
func (e *Encoder) Solve(obs *window.Observations, warm *lp.Basis) (*Result, *lp.Basis, error) {
	return e.SolveSpan(obs, warm, nil)
}

// SolveSpan is Solve recording its work under parent: an "encode" child
// span covering the incremental encoding (window/key/problem dimensions,
// all deterministic), and — via lp.Problem.Trace — a sibling "solve" span
// for the simplex itself. A nil parent makes SolveSpan identical to Solve.
func (e *Encoder) SolveSpan(obs *window.Observations, warm *lp.Basis, parent *obslib.Span) (*Result, *lp.Basis, error) {
	cached := e.nCached
	if e.lastObs != obs || len(obs.Windows) < cached {
		cached = 0
	}
	span := parent.Child("encode",
		obslib.Int("windows", len(obs.Windows)),
		obslib.Int("cached", cached))
	e.sync(obs)
	b := &builder{cfg: e.cfg, priors: e.priors, obs: obs, prob: lp.NewProblem(), vars: map[trace.Key]varPair{}}
	// Rough dimension hint: two role variables per key, two ε per window,
	// and change for the pairing/single-role auxiliaries.
	b.prob.Grow(2*len(e.keys)+2*len(obs.Windows)+64,
		2*len(obs.Windows)+len(e.keys)+64)
	b.prob.MaxIters = e.cfg.MaxLPIters
	b.prob.Parallel = e.cfg.Parallelism
	b.prob.Trace = parent

	for _, k := range e.keys {
		b.addVars(k)
	}
	b.addMostlyProtected(e)
	b.addRareness(e.keys)
	b.addAcqTimeVaries(e.keys)
	b.addMostlyPaired(e.keys)
	b.addSingleRole(e.keys)
	span.Annotate(
		obslib.Int("keys", len(e.keys)),
		obslib.Int("vars", b.prob.NumVars()),
		obslib.Int("constraints", b.prob.NumConstraints()))
	span.End()

	// A carried basis means the problem is an incremental revision of the
	// one that produced it: rows were appended (new windows) or excised
	// (pairs turned racy). That is the dual simplex's home turf, so route
	// through ReoptimizeDual; a cold round takes the two-phase primal path.
	var (
		sol *lp.Solution
		err error
	)
	if warm != nil && warm.Size() > 0 {
		sol, err = b.prob.ReoptimizeDual(warm)
	} else {
		sol, err = b.prob.Solve()
	}
	if err != nil {
		return nil, nil, fmt.Errorf("solver: lp with %d vars, %d constraints over %d windows: %w",
			b.prob.NumVars(), b.prob.NumConstraints(), len(obs.Windows), err)
	}

	res := &Result{
		Acquires:    map[trace.Key]float64{},
		Releases:    map[trace.Key]float64{},
		Objective:   sol.Objective,
		Vars:        b.prob.NumVars(),
		Constraints: b.prob.NumConstraints(),
		Iters:       sol.Iters,
		DualIters:   sol.DualIters,
		Components:  sol.Components,
		RowsPresolved: sol.RowsPresolved,
		ColsPresolved: sol.ColsPresolved,
		WarmStarted: sol.WarmStarted,
	}
	for _, k := range e.keys {
		vp := b.vars[k]
		if vp.acq >= 0 {
			p := sol.Value(vp.acq)
			res.Acquires[k] = p
			if p >= e.cfg.Threshold {
				res.AcquireSet = append(res.AcquireSet, k)
			}
		}
		if vp.rel >= 0 {
			p := sol.Value(vp.rel)
			res.Releases[k] = p
			if p >= e.cfg.Threshold {
				res.ReleaseSet = append(res.ReleaseSet, k)
			}
		}
	}
	return res, sol.Basis, nil
}

// Solve encodes the accumulated observations from scratch and returns the
// optimum. It is the one-shot form of Encoder.Solve; both produce the same
// linear program and the same result.
func Solve(obs *window.Observations, cfg Config) (*Result, error) {
	res, _, err := NewEncoder(cfg).Solve(obs, nil)
	return res, err
}

// builder assembles one round's lp.Problem.
type builder struct {
	cfg    Config
	priors *Priors
	obs    *window.Observations
	prob   *lp.Problem
	vars   map[trace.Key]varPair
}

// tieBreakEps scales the deterministic tie-breaker costs on role
// variables. The SherLock encodings routinely have tied optima — several
// candidate operations protecting the same windows at the same penalty —
// and which vertex a simplex reaches then depends on its pivot path, i.e.
// on whether and from where it was warm-started. A tiny name-hashed cost
// on every role variable makes the optimum generically unique, so every
// pivot path (cold, warm from any checkpoint) converges to the same
// vertex — the property the incremental-inference byte-identity contract
// rests on. The scale sits well above the simplex's 1e-9 pivot tolerance
// (so the preference is acted on) and well below the 1e-3-granular real
// penalties (so it never overrides genuine evidence).
//
// Only role variables are perturbed: their names are identical across
// encodings, while ε/auxiliary names are not (index- vs UID-based window
// naming), and the auxiliaries are uniquely determined by the role
// variables anyway — each carries a strictly positive cost and a one-sided
// constraint, so it sits at its bound once the role variables are fixed.
const tieBreakEps = 1e-6

// nameWeight maps a variable name to a deterministic pseudo-random weight
// in [0, 1) (FNV-1a 64).
func nameWeight(s string) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return float64(h>>11) / (1 << 53)
}

// addVars creates the role variables of one candidate under the
// Read-Acquire & Write-Release property (or both roles under its ablation,
// with the role-exclusivity constraint instead).
func (b *builder) addVars(k trace.Key) {
	vp := varPair{acq: -1, rel: -1}
	acqCapable := trace.AcquireCapable(k.Kind())
	relCapable := trace.ReleaseCapable(k.Kind())
	if !b.cfg.Hyp.ReadAcqWriteRel {
		// Ablation: every op may serve either role, but never both.
		acqCapable, relCapable = true, true
	}
	if acqCapable {
		name := string(k) + "^acq"
		vp.acq = b.prob.AddVariable(name)
		b.prob.SetUpperBound(vp.acq, 1)
		b.prob.AddCost(vp.acq, tieBreakEps*nameWeight(name))
	}
	if relCapable {
		name := string(k) + "^rel"
		vp.rel = b.prob.AddVariable(name)
		b.prob.SetUpperBound(vp.rel, 1)
		b.prob.AddCost(vp.rel, tieBreakEps*nameWeight(name))
	}
	if vp.acq >= 0 && vp.rel >= 0 {
		// A release cannot be an acquire and vice versa.
		b.prob.AddNamedConstraint("excl("+string(k)+")",
			map[int]float64{vp.acq: 1, vp.rel: 1}, lp.LE, 1)
	}
	b.vars[k] = vp
}

// addMostlyProtected adds Eq. 2's rel(w) and acq(w) terms for every
// non-retired window. Windows are identified by their UID when they carry
// one (checkpointed windows named by owning trace), otherwise by their
// absolute index in the accumulator — not their position after racy
// filtering — so the term names (and with them the basis mapping) stay
// stable when a pair turns racy and its rows are retired. UID naming goes
// further: it survives windows from other traces being inserted ahead,
// which is what lets an incremental re-solve carry its basis across
// arbitrary upload orders. Names never influence pivoting, so the two
// schemes produce the identical program values either way.
func (b *builder) addMostlyProtected(e *Encoder) {
	if !b.cfg.Hyp.MostlyProtected {
		return
	}
	for wi := range b.obs.Windows {
		w := &b.obs.Windows[wi]
		if !b.cfg.KeepRacyWindows && b.obs.RacyPairs[w.Pair] {
			continue
		}
		id := w.UID
		if id == "" {
			id = fmt.Sprintf("w%d", wi)
		}
		b.addWindowTerm("rel("+id+")", e.winRel[wi], trace.RoleRelease)
		b.addWindowTerm("acq("+id+")", e.winAcq[wi], trace.RoleAcquire)
	}
}

// addWindowTerm adds ε ≥ 1 − Σ var over the distinct role-capable
// candidates of one window side, with cost 1 on ε. Each distinct operation
// contributes its variable once regardless of dynamic occurrences (paper
// Section 4.2). cands is sorted and unique, and role variables are created
// in key order, so the row's entries come out index-ascending by
// construction — the precondition for the allocation-light lp.AddRow path.
func (b *builder) addWindowTerm(name string, cands []trace.Key, role trace.Role) {
	idx := make([]int, 0, len(cands)+1)
	for _, k := range cands {
		vp := b.vars[k]
		v := vp.rel
		if role == trace.RoleAcquire {
			v = vp.acq
		}
		if v >= 0 {
			idx = append(idx, v)
		}
	}
	eps := b.prob.AddVariable(name)
	b.prob.AddCost(eps, 1)
	idx = append(idx, eps) // just created: largest index, keeps the order
	coeffs := make([]float64, len(idx))
	for i := range coeffs {
		coeffs[i] = 1
	}
	b.prob.AddRow("mp_"+name, idx, coeffs, lp.GE, 1)
}

// addRareness adds Eq. 3's regularization and Eq. 4's occurrence penalty,
// scaled per role by Config.Weights and discounted per role by any
// installed Priors (a believed synchronization pays less for being rare).
func (b *builder) addRareness(keys []trace.Key) {
	if !b.cfg.Hyp.SyncsAreRare {
		return
	}
	w := b.cfg.Weights.Resolved()
	for _, k := range keys {
		pen := b.cfg.Lambda * (1 + b.cfg.RareCoef*b.obs.AvgOccurrence(k))
		acqPen, relPen := w.Acquire*pen, w.Release*pen
		if b.priors != nil {
			acqPen *= b.priors.discount(b.priors.Acquires[k])
			relPen *= b.priors.discount(b.priors.Releases[k])
		}
		vp := b.vars[k]
		if vp.acq >= 0 {
			b.prob.AddCost(vp.acq, acqPen)
		}
		if vp.rel >= 0 {
			b.prob.AddCost(vp.rel, relPen)
		}
	}
}

// addAcqTimeVaries adds Eq. 5's duration-variation penalty on method-entry
// acquire variables.
func (b *builder) addAcqTimeVaries(keys []trace.Key) {
	if !b.cfg.Hyp.AcqTimeVaries {
		return
	}
	pct := b.obs.CVPercentiles()
	wAcq := b.cfg.Weights.Resolved().Acquire
	for _, k := range keys {
		if k.Kind() != trace.KindBegin {
			continue
		}
		vp := b.vars[k]
		if vp.acq < 0 {
			continue
		}
		p := pct[k.Name()] // methods never completed rank at percentile 0
		b.prob.AddCost(vp.acq, wAcq*b.cfg.Lambda*(1-p))
	}
}

// addMostlyPaired adds Eq. 6 (class-level method pairing) and Eq. 7
// (field read/write pairing).
func (b *builder) addMostlyPaired(keys []trace.Key) {
	if !b.cfg.Hyp.MostlyPaired {
		return
	}
	// Eq. 6: per class, |Σ method acq − Σ method rel|.
	classAcq := map[string][]int{}
	classRel := map[string][]int{}
	for _, k := range keys {
		if k.IsField() || k.Class() == "" {
			continue
		}
		vp := b.vars[k]
		if vp.acq >= 0 {
			classAcq[k.Class()] = append(classAcq[k.Class()], vp.acq)
		}
		if vp.rel >= 0 {
			classRel[k.Class()] = append(classRel[k.Class()], vp.rel)
		}
	}
	classes := map[string]bool{}
	for c := range classAcq {
		classes[c] = true
	}
	for c := range classRel {
		classes[c] = true
	}
	ordered := make([]string, 0, len(classes))
	for c := range classes {
		ordered = append(ordered, c)
	}
	sort.Strings(ordered)
	for _, c := range ordered {
		b.addAbsTerm("pair_c("+c+")", classAcq[c], classRel[c])
	}

	// Eq. 7: per field, |read^acq − write^rel|.
	fields := map[string]bool{}
	for _, k := range keys {
		if k.IsField() {
			fields[k.Name()] = true
		}
	}
	orderedF := make([]string, 0, len(fields))
	for f := range fields {
		orderedF = append(orderedF, f)
	}
	sort.Strings(orderedF)
	for _, f := range orderedF {
		var acqs, rels []int
		if vp, ok := b.vars[trace.KeyFor(trace.KindRead, f)]; ok && vp.acq >= 0 {
			acqs = append(acqs, vp.acq)
		}
		if vp, ok := b.vars[trace.KeyFor(trace.KindWrite, f)]; ok && vp.rel >= 0 {
			rels = append(rels, vp.rel)
		}
		if len(acqs)+len(rels) > 0 {
			b.addAbsTerm("pair_f("+f+")", acqs, rels)
		}
	}
}

// addAbsTerm adds t ≥ ±(Σ acqs − Σ rels) with cost λ·t.
func (b *builder) addAbsTerm(name string, acqs, rels []int) {
	t := b.prob.AddVariable(name)
	b.prob.AddCost(t, b.cfg.Lambda)
	pos := map[int]float64{t: 1}
	neg := map[int]float64{t: 1}
	for _, v := range acqs {
		pos[v] -= 1
		neg[v] += 1
	}
	for _, v := range rels {
		pos[v] += 1
		neg[v] -= 1
	}
	b.prob.AddNamedConstraint(name+"+", pos, lp.GE, 0)
	b.prob.AddNamedConstraint(name+"-", neg, lp.GE, 0)
}

// addSingleRole adds begin(l)^acq + end(l)^rel ≤ 1 for every library API —
// or, under SoftSingleRole, the relaxed penalty λ·max(0, begin+end−1) that
// lets strong evidence overrule the assumption (double-role APIs).
func (b *builder) addSingleRole(keys []trace.Key) {
	if !b.cfg.Hyp.SingleRole {
		return
	}
	for _, k := range keys {
		if k.Kind() != trace.KindBegin || !b.obs.LibAPIs[k.Name()] {
			continue
		}
		beginVP := b.vars[k]
		endVP, ok := b.vars[trace.KeyFor(trace.KindEnd, k.Name())]
		if !ok || beginVP.acq < 0 || endVP.rel < 0 {
			continue
		}
		if b.cfg.SoftSingleRole {
			eps := b.prob.AddVariable("singlerole(" + k.Name() + ")")
			b.prob.AddCost(eps, b.cfg.Lambda)
			b.prob.AddNamedConstraint("srs("+k.Name()+")", map[int]float64{
				eps: 1, beginVP.acq: -1, endVP.rel: -1,
			}, lp.GE, -1)
			continue
		}
		b.prob.AddNamedConstraint("sr("+k.Name()+")",
			map[int]float64{beginVP.acq: 1, endVP.rel: 1}, lp.LE, 1)
	}
}
