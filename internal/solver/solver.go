// Package solver encodes SherLock's synchronization properties and
// hypotheses (paper Section 2) over accumulated observations as a linear
// program (Section 4.2, Eq. 1–8) and interprets the optimum as
// acquire/release probabilities per candidate operation.
//
// Hard constraints (properties):
//
//   - Read-Acquire & Write-Release: read^rel = write^acq = begin^rel =
//     end^acq = 0. Implemented by not creating those variables at all; the
//     Table 5 ablation re-creates them (plus the role-exclusivity
//     constraint acq+rel ≤ 1 the paper states alongside).
//   - Single Role: a library API serves one synchronization role:
//     begin(l)^acq + end(l)^rel ≤ 1.
//
// Soft constraints (hypotheses), as objective penalties:
//
//   - Mostly Protected (Eq. 2): per window, ε ≥ 1 − Σ role-capable vars,
//     minimize ε (weight 1).
//   - Synchronizations are Rare (Eq. 3, 4): λ·(v + 0.1·avgOcc(v)·v).
//   - Acquisition-Time Mostly Varies (Eq. 5): λ·(1 − pct(CV(dur)))·begin^acq.
//   - Mostly Paired (Eq. 6, 7): λ·|Σ acq − Σ rel| per class (methods) and
//     λ·|read(f)^acq − write(f)^rel| per field.
//
// λ scales everything except Mostly-Protected (Table 6's behaviour: larger
// λ ⇒ Mostly-Protected loses relative weight ⇒ fewer inferred syncs).
package solver

import (
	"fmt"
	"sort"

	"sherlock/internal/lp"
	"sherlock/internal/trace"
	"sherlock/internal/window"
)

// Hypotheses toggles each property/hypothesis for the Table 5 ablation.
type Hypotheses struct {
	MostlyProtected bool
	SyncsAreRare    bool
	AcqTimeVaries   bool
	MostlyPaired    bool
	ReadAcqWriteRel bool
	SingleRole      bool
}

// AllHypotheses enables everything (SherLock's default).
func AllHypotheses() Hypotheses {
	return Hypotheses{
		MostlyProtected: true,
		SyncsAreRare:    true,
		AcqTimeVaries:   true,
		MostlyPaired:    true,
		ReadAcqWriteRel: true,
		SingleRole:      true,
	}
}

// Config tunes the encoding.
type Config struct {
	// Lambda trades Mostly-Protected off against all other hypotheses
	// (paper default 0.2; Table 6 sweeps it).
	Lambda float64
	// RareCoef is Eq. 4's 0.1 coefficient.
	RareCoef float64
	// Threshold is the probability at which a variable counts as a
	// synchronization ("assigned 1" in the paper; vertex solutions are
	// near-integral, 0.9 tolerates rounding).
	Threshold float64
	// Hyp selects active hypotheses.
	Hyp Hypotheses
	// KeepRacyWindows disables the data-race-observation feedback: windows
	// from racy pairs keep their Mostly-Protected terms (Figure 4's "no
	// race removal" line).
	KeepRacyWindows bool
	// SoftSingleRole turns the Single-Role property into a soft constraint
	// (penalty λ·max(0, begin^acq + end^rel − 1)) instead of a hard one —
	// the extension the paper proposes in Section 5.5 to recover
	// double-role APIs like UpgradeToWriterLock.
	SoftSingleRole bool
}

// DefaultConfig mirrors the paper's defaults.
func DefaultConfig() Config {
	return Config{Lambda: 0.2, RareCoef: 0.1, Threshold: 0.9, Hyp: AllHypotheses()}
}

// Result is the solved inference state.
type Result struct {
	// Acquires / Releases map every candidate to its solved probability of
	// serving that role.
	Acquires map[trace.Key]float64
	Releases map[trace.Key]float64
	// AcquireSet / ReleaseSet are the keys at/above Threshold, sorted.
	AcquireSet []trace.Key
	ReleaseSet []trace.Key
	// Objective is the LP optimum; Vars/Constraints/Iters describe problem
	// size (overhead reporting).
	Objective   float64
	Vars        int
	Constraints int
	Iters       int
}

// Syncs returns the union of inferred acquire and release keys with roles.
func (r *Result) Syncs() map[trace.Key]trace.Role {
	out := map[trace.Key]trace.Role{}
	for _, k := range r.AcquireSet {
		out[k] = trace.RoleAcquire
	}
	for _, k := range r.ReleaseSet {
		out[k] = trace.RoleRelease
	}
	return out
}

// IsRelease reports whether the solver currently believes key is a release
// (Perturber input).
func (r *Result) IsRelease(k trace.Key) bool {
	return r.Releases[k] >= 0.9
}

// vars holds the per-key LP variable ids (−1 when the role variable does
// not exist under the Read-Acquire & Write-Release property).
type varPair struct {
	acq, rel int
}

type encoder struct {
	cfg  Config
	obs  *window.Observations
	prob *lp.Problem
	vars map[trace.Key]varPair
}

// Solve encodes the accumulated observations and returns the optimum.
func Solve(obs *window.Observations, cfg Config) (*Result, error) {
	e := &encoder{cfg: cfg, obs: obs, prob: lp.NewProblem(), vars: map[trace.Key]varPair{}}

	windows := obs.ActiveWindows()
	if cfg.KeepRacyWindows {
		windows = obs.Windows
	}

	// Collect candidate keys from every accumulated window (racy ones
	// included: their keys can still participate in pairing terms), in
	// deterministic order.
	keySet := map[trace.Key]bool{}
	for _, w := range obs.Windows {
		for k := range w.UniqueRel() {
			keySet[k] = true
		}
		for k := range w.UniqueAcq() {
			keySet[k] = true
		}
	}
	keys := make([]trace.Key, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	for _, k := range keys {
		e.addVars(k)
	}
	e.addMostlyProtected(windows)
	e.addRareness(keys)
	e.addAcqTimeVaries(keys)
	e.addMostlyPaired(keys)
	e.addSingleRole(keys)

	sol, err := e.prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("solver: %w", err)
	}

	res := &Result{
		Acquires:    map[trace.Key]float64{},
		Releases:    map[trace.Key]float64{},
		Objective:   sol.Objective,
		Vars:        e.prob.NumVars(),
		Constraints: e.prob.NumConstraints(),
		Iters:       sol.Iters,
	}
	for _, k := range keys {
		vp := e.vars[k]
		if vp.acq >= 0 {
			p := sol.Value(vp.acq)
			res.Acquires[k] = p
			if p >= cfg.Threshold {
				res.AcquireSet = append(res.AcquireSet, k)
			}
		}
		if vp.rel >= 0 {
			p := sol.Value(vp.rel)
			res.Releases[k] = p
			if p >= cfg.Threshold {
				res.ReleaseSet = append(res.ReleaseSet, k)
			}
		}
	}
	return res, nil
}

// addVars creates the role variables of one candidate under the
// Read-Acquire & Write-Release property (or both roles under its ablation,
// with the role-exclusivity constraint instead).
func (e *encoder) addVars(k trace.Key) {
	vp := varPair{acq: -1, rel: -1}
	acqCapable := trace.AcquireCapable(k.Kind())
	relCapable := trace.ReleaseCapable(k.Kind())
	if !e.cfg.Hyp.ReadAcqWriteRel {
		// Ablation: every op may serve either role, but never both.
		acqCapable, relCapable = true, true
	}
	if acqCapable {
		vp.acq = e.prob.AddVariable(string(k) + "^acq")
		e.prob.SetUpperBound(vp.acq, 1)
	}
	if relCapable {
		vp.rel = e.prob.AddVariable(string(k) + "^rel")
		e.prob.SetUpperBound(vp.rel, 1)
	}
	if vp.acq >= 0 && vp.rel >= 0 {
		// A release cannot be an acquire and vice versa.
		e.prob.AddConstraint(map[int]float64{vp.acq: 1, vp.rel: 1}, lp.LE, 1)
	}
	e.vars[k] = vp
}

// addMostlyProtected adds Eq. 2's rel(w) and acq(w) terms for every window.
func (e *encoder) addMostlyProtected(windows []window.Window) {
	if !e.cfg.Hyp.MostlyProtected {
		return
	}
	for wi, w := range windows {
		e.addWindowTerm(fmt.Sprintf("rel(w%d)", wi), w.UniqueRel(), trace.RoleRelease)
		e.addWindowTerm(fmt.Sprintf("acq(w%d)", wi), w.UniqueAcq(), trace.RoleAcquire)
	}
}

// addWindowTerm adds ε ≥ 1 − Σ var over the distinct role-capable
// candidates of one window side, with cost 1 on ε. Each distinct operation
// contributes its variable once regardless of dynamic occurrences (paper
// Section 4.2).
func (e *encoder) addWindowTerm(name string, cands map[trace.Key]int, role trace.Role) {
	coeffs := map[int]float64{}
	ordered := make([]trace.Key, 0, len(cands))
	for k := range cands {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, k := range ordered {
		vp := e.vars[k]
		v := vp.rel
		if role == trace.RoleAcquire {
			v = vp.acq
		}
		if v >= 0 {
			coeffs[v] += 1
		}
	}
	eps := e.prob.AddVariable(name)
	e.prob.AddCost(eps, 1)
	coeffs[eps] = 1
	e.prob.AddConstraint(coeffs, lp.GE, 1)
}

// addRareness adds Eq. 3's regularization and Eq. 4's occurrence penalty.
func (e *encoder) addRareness(keys []trace.Key) {
	if !e.cfg.Hyp.SyncsAreRare {
		return
	}
	for _, k := range keys {
		pen := e.cfg.Lambda * (1 + e.cfg.RareCoef*e.obs.AvgOccurrence(k))
		vp := e.vars[k]
		if vp.acq >= 0 {
			e.prob.AddCost(vp.acq, pen)
		}
		if vp.rel >= 0 {
			e.prob.AddCost(vp.rel, pen)
		}
	}
}

// addAcqTimeVaries adds Eq. 5's duration-variation penalty on method-entry
// acquire variables.
func (e *encoder) addAcqTimeVaries(keys []trace.Key) {
	if !e.cfg.Hyp.AcqTimeVaries {
		return
	}
	pct := e.obs.CVPercentiles()
	for _, k := range keys {
		if k.Kind() != trace.KindBegin {
			continue
		}
		vp := e.vars[k]
		if vp.acq < 0 {
			continue
		}
		p := pct[k.Name()] // methods never completed rank at percentile 0
		e.prob.AddCost(vp.acq, e.cfg.Lambda*(1-p))
	}
}

// addMostlyPaired adds Eq. 6 (class-level method pairing) and Eq. 7
// (field read/write pairing).
func (e *encoder) addMostlyPaired(keys []trace.Key) {
	if !e.cfg.Hyp.MostlyPaired {
		return
	}
	// Eq. 6: per class, |Σ method acq − Σ method rel|.
	classAcq := map[string][]int{}
	classRel := map[string][]int{}
	for _, k := range keys {
		if k.IsField() || k.Class() == "" {
			continue
		}
		vp := e.vars[k]
		if vp.acq >= 0 {
			classAcq[k.Class()] = append(classAcq[k.Class()], vp.acq)
		}
		if vp.rel >= 0 {
			classRel[k.Class()] = append(classRel[k.Class()], vp.rel)
		}
	}
	classes := map[string]bool{}
	for c := range classAcq {
		classes[c] = true
	}
	for c := range classRel {
		classes[c] = true
	}
	ordered := make([]string, 0, len(classes))
	for c := range classes {
		ordered = append(ordered, c)
	}
	sort.Strings(ordered)
	for _, c := range ordered {
		e.addAbsTerm("pair_c("+c+")", classAcq[c], classRel[c])
	}

	// Eq. 7: per field, |read^acq − write^rel|.
	fields := map[string]bool{}
	for _, k := range keys {
		if k.IsField() {
			fields[k.Name()] = true
		}
	}
	orderedF := make([]string, 0, len(fields))
	for f := range fields {
		orderedF = append(orderedF, f)
	}
	sort.Strings(orderedF)
	for _, f := range orderedF {
		var acqs, rels []int
		if vp, ok := e.vars[trace.KeyFor(trace.KindRead, f)]; ok && vp.acq >= 0 {
			acqs = append(acqs, vp.acq)
		}
		if vp, ok := e.vars[trace.KeyFor(trace.KindWrite, f)]; ok && vp.rel >= 0 {
			rels = append(rels, vp.rel)
		}
		if len(acqs)+len(rels) > 0 {
			e.addAbsTerm("pair_f("+f+")", acqs, rels)
		}
	}
}

// addAbsTerm adds t ≥ ±(Σ acqs − Σ rels) with cost λ·t.
func (e *encoder) addAbsTerm(name string, acqs, rels []int) {
	t := e.prob.AddVariable(name)
	e.prob.AddCost(t, e.cfg.Lambda)
	pos := map[int]float64{t: 1}
	neg := map[int]float64{t: 1}
	for _, v := range acqs {
		pos[v] -= 1
		neg[v] += 1
	}
	for _, v := range rels {
		pos[v] += 1
		neg[v] -= 1
	}
	e.prob.AddConstraint(pos, lp.GE, 0)
	e.prob.AddConstraint(neg, lp.GE, 0)
}

// addSingleRole adds begin(l)^acq + end(l)^rel ≤ 1 for every library API —
// or, under SoftSingleRole, the relaxed penalty λ·max(0, begin+end−1) that
// lets strong evidence overrule the assumption (double-role APIs).
func (e *encoder) addSingleRole(keys []trace.Key) {
	if !e.cfg.Hyp.SingleRole {
		return
	}
	for _, k := range keys {
		if k.Kind() != trace.KindBegin || !e.obs.LibAPIs[k.Name()] {
			continue
		}
		beginVP := e.vars[k]
		endVP, ok := e.vars[trace.KeyFor(trace.KindEnd, k.Name())]
		if !ok || beginVP.acq < 0 || endVP.rel < 0 {
			continue
		}
		if e.cfg.SoftSingleRole {
			eps := e.prob.AddVariable("singlerole(" + k.Name() + ")")
			e.prob.AddCost(eps, e.cfg.Lambda)
			e.prob.AddConstraint(map[int]float64{
				eps: 1, beginVP.acq: -1, endVP.rel: -1,
			}, lp.GE, -1)
			continue
		}
		e.prob.AddConstraint(map[int]float64{beginVP.acq: 1, endVP.rel: 1}, lp.LE, 1)
	}
}
