package solver

import (
	"math/rand"
	"testing"

	"sherlock/internal/trace"
	"sherlock/internal/window"
)

func wk(n string) trace.Key { return trace.KeyFor(trace.KindWrite, n) }
func rk(n string) trace.Key { return trace.KeyFor(trace.KindRead, n) }
func bk(n string) trace.Key { return trace.KeyFor(trace.KindBegin, n) }
func ek(n string) trace.Key { return trace.KeyFor(trace.KindEnd, n) }

func cands(keys ...trace.Key) []window.CandEvent {
	out := make([]window.CandEvent, len(keys))
	for i, k := range keys {
		out[i] = window.CandEvent{Key: k, Time: int64(i + 1)}
	}
	return out
}

// obsWith builds observations from explicit windows.
func obsWith(ws ...window.Window) *window.Observations {
	o := window.NewObservations(window.DefaultConfig())
	for i := range ws {
		if ws[i].Pair == (window.PairID{}) {
			ws[i].Pair = window.PairID{First: 2*i + 1, Second: 2*i + 2}
		}
	}
	o.AddWindows(ws)
	return o
}

func solveOK(t *testing.T, o *window.Observations, cfg Config) *Result {
	t.Helper()
	r, err := Solve(o, cfg)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return r
}

func TestSingleWindowInference(t *testing.T) {
	o := obsWith(window.Window{
		RelEvents: cands(wk("C::f")),
		AcqEvents: cands(rk("C::f")),
	})
	r := solveOK(t, o, DefaultConfig())
	if r.Releases[wk("C::f")] < 0.9 {
		t.Errorf("write release prob = %v", r.Releases[wk("C::f")])
	}
	if r.Acquires[rk("C::f")] < 0.9 {
		t.Errorf("read acquire prob = %v", r.Acquires[rk("C::f")])
	}
}

func TestReadAcqWriteRelProperty(t *testing.T) {
	// A read can never be inferred as a release even if it is the only
	// candidate on the release side.
	o := obsWith(window.Window{
		RelEvents: cands(rk("C::g")),
		AcqEvents: cands(rk("C::f")),
	})
	r := solveOK(t, o, DefaultConfig())
	if _, exists := r.Releases[rk("C::g")]; exists {
		t.Error("read must have no release variable under Read-Acq & Write-Rel")
	}
	// Under the ablation, the variable exists and gets picked. (The
	// all-read release side also makes this window a data-race
	// observation, so re-enable it for the ablated solve.)
	cfg := DefaultConfig()
	cfg.Hyp.ReadAcqWriteRel = false
	cfg.KeepRacyWindows = true
	r = solveOK(t, o, cfg)
	if r.Releases[rk("C::g")] < 0.9 {
		t.Errorf("ablated: read release prob = %v", r.Releases[rk("C::g")])
	}
}

func TestSharedCandidatePreferred(t *testing.T) {
	// Three windows each contain a distinct method-end plus one shared
	// API end. Minimizing sync count must pick the shared one.
	shared := ek("Lib::Exit")
	o := obsWith(
		window.Window{RelEvents: cands(ek("C::m1"), shared), AcqEvents: cands(rk("C::f"))},
		window.Window{RelEvents: cands(ek("C::m2"), shared), AcqEvents: cands(rk("C::f"))},
		window.Window{RelEvents: cands(ek("C::m3"), shared), AcqEvents: cands(rk("C::f"))},
	)
	r := solveOK(t, o, DefaultConfig())
	if r.Releases[shared] < 0.9 {
		t.Errorf("shared candidate prob = %v; releases=%v", r.Releases[shared], r.ReleaseSet)
	}
	for _, m := range []trace.Key{ek("C::m1"), ek("C::m2"), ek("C::m3")} {
		if r.Releases[m] > 0.1 {
			t.Errorf("distinct candidate %s got prob %v, want ~0", m, r.Releases[m])
		}
	}
}

func TestRareHypothesisPenalizesFrequentOps(t *testing.T) {
	// Candidate A occurs 30 times per window (a popular read), candidate B
	// once; both cover all windows. B must win.
	popular := rk("C::popular")
	seldom := rk("C::seldom")
	var popularEvents []window.CandEvent
	for i := 0; i < 30; i++ {
		popularEvents = append(popularEvents, window.CandEvent{Key: popular, Time: int64(i + 1)})
	}
	mk := func(pair window.PairID) window.Window {
		return window.Window{
			Pair:      pair,
			RelEvents: cands(wk("C::w")),
			AcqEvents: append(cands(seldom), popularEvents...),
		}
	}
	o := obsWith(mk(window.PairID{First: 1, Second: 2}), mk(window.PairID{First: 3, Second: 4}))
	r := solveOK(t, o, DefaultConfig())
	if r.Acquires[seldom] < 0.9 {
		t.Errorf("rare candidate prob = %v", r.Acquires[seldom])
	}
	if r.Acquires[popular] > 0.1 {
		t.Errorf("popular candidate prob = %v, want ~0", r.Acquires[popular])
	}
}

func TestWithoutMostlyProtectedNothingInferred(t *testing.T) {
	o := obsWith(window.Window{
		RelEvents: cands(wk("C::f")),
		AcqEvents: cands(rk("C::f")),
	})
	cfg := DefaultConfig()
	cfg.Hyp.MostlyProtected = false
	r := solveOK(t, o, cfg)
	if len(r.AcquireSet)+len(r.ReleaseSet) != 0 {
		t.Errorf("without Mostly-Protected the solver must infer nothing, got %v %v",
			r.AcquireSet, r.ReleaseSet)
	}
}

func TestWithoutRareEverythingInWindowsTagged(t *testing.T) {
	// Without the rare hypothesis there is no cost to tagging ops, so
	// every capable candidate in a window side can saturate.
	o := obsWith(window.Window{
		RelEvents: cands(wk("C::a"), wk("C::b"), ek("C::m")),
		AcqEvents: cands(rk("C::a")),
	})
	cfg := DefaultConfig()
	cfg.Hyp.SyncsAreRare = false
	cfg.Hyp.MostlyPaired = false
	cfg.Hyp.AcqTimeVaries = false
	r := solveOK(t, o, cfg)
	// At least as many releases as the default config would produce; the
	// default should pick exactly one.
	if len(r.ReleaseSet) < 1 {
		t.Errorf("releases = %v", r.ReleaseSet)
	}
	rDefault := solveOK(t, o, DefaultConfig())
	if len(rDefault.ReleaseSet) != 1 {
		t.Errorf("default config releases = %v, want exactly 1", rDefault.ReleaseSet)
	}
}

func TestMostlyPairedFieldBonus(t *testing.T) {
	// Window 1 pins write:C::v as release. Window 2's acquire side offers
	// read:C::v and read:C::u — pairing must break the tie toward read:C::v.
	o := obsWith(
		window.Window{RelEvents: cands(wk("C::v")), AcqEvents: cands(rk("C::z"))},
		window.Window{RelEvents: cands(wk("C::v")), AcqEvents: cands(rk("C::v"), rk("C::u"))},
	)
	r := solveOK(t, o, DefaultConfig())
	if r.Acquires[rk("C::v")] < 0.9 {
		t.Errorf("paired read prob = %v (acquires=%v)", r.Acquires[rk("C::v")], r.AcquireSet)
	}
	if r.Acquires[rk("C::u")] > 0.1 {
		t.Errorf("unpaired read prob = %v, want ~0", r.Acquires[rk("C::u")])
	}
}

func TestMostlyPairedClassBonus(t *testing.T) {
	// begin:Lock::Enter is pinned as acquire by windows; a tie on the
	// release side between end:Lock::Exit and end:Other::M should break
	// toward the same class.
	o := obsWith(
		window.Window{RelEvents: cands(wk("C::w1")), AcqEvents: cands(bk("Lock::Enter"))},
		window.Window{RelEvents: cands(ek("Lock::Exit"), ek("Other::M")), AcqEvents: cands(bk("Lock::Enter"))},
	)
	cfg := DefaultConfig()
	cfg.Hyp.AcqTimeVaries = false // no duration data in synthetic windows
	r := solveOK(t, o, cfg)
	if r.Releases[ek("Lock::Exit")] < 0.9 {
		t.Errorf("same-class release prob = %v (releases=%v)", r.Releases[ek("Lock::Exit")], r.ReleaseSet)
	}
}

func TestAcqTimeVariesPrefersVaryingMethod(t *testing.T) {
	o := window.NewObservations(window.DefaultConfig())
	// Two candidate begins tie on a window; duration stats differ.
	o.AddWindows([]window.Window{{
		Pair:      window.PairID{First: 1, Second: 2},
		RelEvents: cands(wk("C::w")),
		AcqEvents: cands(bk("C::stable"), bk("C::vary")),
	}})
	tr := &trace.Trace{Events: []trace.Event{
		{Time: 0, Kind: trace.KindBegin, Name: "C::stable"},
		{Time: 100, Kind: trace.KindEnd, Name: "C::stable"},
		{Time: 200, Kind: trace.KindBegin, Name: "C::stable"},
		{Time: 301, Kind: trace.KindEnd, Name: "C::stable"},
		{Time: 400, Kind: trace.KindBegin, Name: "C::vary"},
		{Time: 410, Kind: trace.KindEnd, Name: "C::vary"},
		{Time: 500, Kind: trace.KindBegin, Name: "C::vary"},
		{Time: 2500, Kind: trace.KindEnd, Name: "C::vary"},
	}}
	o.AddTraceStats(tr)
	r := solveOK(t, o, DefaultConfig())
	if r.Acquires[bk("C::vary")] < 0.9 {
		t.Errorf("varying method prob = %v", r.Acquires[bk("C::vary")])
	}
	if r.Acquires[bk("C::stable")] > 0.1 {
		t.Errorf("stable method prob = %v, want ~0", r.Acquires[bk("C::stable")])
	}
}

func TestSingleRoleConstraint(t *testing.T) {
	// A lib API appearing as both acquire (its begin) and release (its
	// end) across windows can satisfy only one role.
	api := "Lib::UpgradeToWriterLock"
	o := window.NewObservations(window.DefaultConfig())
	var ws []window.Window
	for i := 0; i < 3; i++ {
		ws = append(ws,
			window.Window{Pair: window.PairID{First: 10 + i, Second: 20 + i},
				RelEvents: cands(ek(api)), AcqEvents: cands(rk("C::f"))},
			window.Window{Pair: window.PairID{First: 30 + i, Second: 40 + i},
				RelEvents: cands(wk("C::f")), AcqEvents: cands(bk(api))},
		)
	}
	o.AddWindows(ws)
	// Mark the API as a library call site.
	o.AddTraceStats(&trace.Trace{Events: []trace.Event{
		{Time: 1, Kind: trace.KindBegin, Name: api, Lib: true},
		{Time: 2, Kind: trace.KindEnd, Name: api, Lib: true},
	}})
	r := solveOK(t, o, DefaultConfig())
	both := r.Acquires[bk(api)] >= 0.9 && r.Releases[ek(api)] >= 0.9
	if both {
		t.Error("Single-Role violated: API inferred as both acquire and release")
	}
	// Ablation allows both.
	cfg := DefaultConfig()
	cfg.Hyp.SingleRole = false
	r = solveOK(t, o, cfg)
	if !(r.Acquires[bk(api)] >= 0.9 && r.Releases[ek(api)] >= 0.9) {
		t.Errorf("without Single-Role both roles should be inferable: acq=%v rel=%v",
			r.Acquires[bk(api)], r.Releases[ek(api)])
	}
}

func TestRacyWindowsDropped(t *testing.T) {
	racy := window.Window{Pair: window.PairID{First: 1, Second: 2},
		AcqEvents: cands(rk("C::f"))} // empty release side: racy
	o := obsWith(racy)
	r := solveOK(t, o, DefaultConfig())
	if len(r.AcquireSet) != 0 {
		t.Errorf("racy window must not drive inference, got %v", r.AcquireSet)
	}
	cfg := DefaultConfig()
	cfg.KeepRacyWindows = true
	r = solveOK(t, o, cfg)
	if r.Acquires[rk("C::f")] < 0.9 {
		t.Errorf("KeepRacyWindows should re-enable the term, prob=%v", r.Acquires[rk("C::f")])
	}
}

func TestLambdaMonotonicity(t *testing.T) {
	// Increasing lambda must never increase the number of inferred syncs.
	mk := func() *window.Observations {
		return obsWith(
			window.Window{RelEvents: cands(wk("C::a")), AcqEvents: cands(rk("C::a"))},
			window.Window{RelEvents: cands(wk("C::b")), AcqEvents: cands(rk("C::b"))},
			window.Window{RelEvents: cands(ek("C::m")), AcqEvents: cands(bk("C::m2"))},
		)
	}
	prev := 1 << 30
	for _, lam := range []float64{0.1, 0.5, 1, 5, 50} {
		cfg := DefaultConfig()
		cfg.Lambda = lam
		r := solveOK(t, mk(), cfg)
		n := len(r.AcquireSet) + len(r.ReleaseSet)
		if n > prev {
			t.Errorf("lambda %v inferred %d > previous %d", lam, n, prev)
		}
		prev = n
	}
	// At extreme lambda nothing is worth inferring.
	cfg := DefaultConfig()
	cfg.Lambda = 1000
	r := solveOK(t, mk(), cfg)
	if len(r.AcquireSet)+len(r.ReleaseSet) != 0 {
		t.Error("extreme lambda should suppress all inference")
	}
}

func TestEmptyObservations(t *testing.T) {
	o := window.NewObservations(window.DefaultConfig())
	r := solveOK(t, o, DefaultConfig())
	if len(r.AcquireSet)+len(r.ReleaseSet) != 0 {
		t.Error("no observations, no inference")
	}
}

func TestResultSyncsMap(t *testing.T) {
	o := obsWith(window.Window{
		RelEvents: cands(wk("C::f")),
		AcqEvents: cands(rk("C::f")),
	})
	r := solveOK(t, o, DefaultConfig())
	m := r.Syncs()
	if m[wk("C::f")] != trace.RoleRelease || m[rk("C::f")] != trace.RoleAcquire {
		t.Errorf("Syncs() = %v", m)
	}
	if !r.IsRelease(wk("C::f")) || r.IsRelease(rk("C::f")) {
		t.Error("IsRelease misreports")
	}
}

// Property test: random observation sets must always solve, with all
// probabilities in [0,1], deterministic output, and every active window
// side either covered by an inferred candidate or paid for by the
// Mostly-Protected slack (i.e. the LP is never trivially degenerate).
func TestSolverPropertiesOnRandomObservations(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	keys := []trace.Key{
		rk("F.C::a"), wk("F.C::a"), rk("F.C::b"), wk("F.C::b"),
		bk("F.L::enter"), ek("F.L::exit"), bk("F.M::run"), ek("F.M::run"),
	}
	for trial := 0; trial < 40; trial++ {
		o := window.NewObservations(window.DefaultConfig())
		nWin := 1 + rng.Intn(8)
		var ws []window.Window
		for w := 0; w < nWin; w++ {
			win := window.Window{
				Pair: window.PairID{First: rng.Intn(6) + 1, Second: rng.Intn(6) + 10},
				TA:   int64(w * 100), TB: int64(w*100 + 90),
			}
			for k := 0; k < 1+rng.Intn(4); k++ {
				win.RelEvents = append(win.RelEvents,
					window.CandEvent{Key: keys[rng.Intn(len(keys))], Time: win.TA + int64(k) + 1})
			}
			for k := 0; k < 1+rng.Intn(4); k++ {
				win.AcqEvents = append(win.AcqEvents,
					window.CandEvent{Key: keys[rng.Intn(len(keys))], Time: win.TA + int64(k) + 2})
			}
			ws = append(ws, win)
		}
		o.AddWindows(ws)

		r1 := solveOK(t, o, DefaultConfig())
		for k, p := range r1.Acquires {
			if p < -1e-6 || p > 1+1e-6 {
				t.Fatalf("trial %d: acquire prob out of range: %s=%v", trial, k, p)
			}
		}
		for k, p := range r1.Releases {
			if p < -1e-6 || p > 1+1e-6 {
				t.Fatalf("trial %d: release prob out of range: %s=%v", trial, k, p)
			}
		}
		// Determinism.
		r2 := solveOK(t, o, DefaultConfig())
		if r1.Objective != r2.Objective ||
			len(r1.AcquireSet) != len(r2.AcquireSet) ||
			len(r1.ReleaseSet) != len(r2.ReleaseSet) {
			t.Fatalf("trial %d: non-deterministic solve", trial)
		}
		// Single-Role never violated for lib APIs... (none marked lib here);
		// instead check role exclusivity has no key inferred as both roles
		// when both variables exist (the ReadAcqWriteRel default forbids it
		// structurally, so check the ablated encoding too).
		cfg := DefaultConfig()
		cfg.Hyp.ReadAcqWriteRel = false
		r3 := solveOK(t, o, cfg)
		for k := range r3.Acquires {
			if r3.Acquires[k] >= cfg.Threshold && r3.Releases[k] >= cfg.Threshold {
				t.Fatalf("trial %d: %s inferred as both roles", trial, k)
			}
		}
	}
}

// The LP objective reported must match the objective recomputed from the
// returned probabilities (cross-check of the encoding plumbing): since the
// auxiliary variables are internal, verify instead that adding an
// irrelevant observation never decreases the optimum (monotone costs).
func TestSolverObjectiveMonotonicity(t *testing.T) {
	base := obsWith(window.Window{
		RelEvents: cands(wk("M.C::f")),
		AcqEvents: cands(rk("M.C::f")),
	})
	r1 := solveOK(t, base, DefaultConfig())

	more := obsWith(
		window.Window{RelEvents: cands(wk("M.C::f")), AcqEvents: cands(rk("M.C::f"))},
		window.Window{Pair: window.PairID{First: 7, Second: 8},
			RelEvents: cands(wk("M.C::g")), AcqEvents: cands(rk("M.C::g"))},
	)
	r2 := solveOK(t, more, DefaultConfig())
	if r2.Objective < r1.Objective-1e-9 {
		t.Errorf("objective decreased with more observations: %v -> %v", r1.Objective, r2.Objective)
	}
}
