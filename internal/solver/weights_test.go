package solver

import (
	"testing"

	"sherlock/internal/window"
)

func TestWeightsZeroValueIsNeutral(t *testing.T) {
	var w ObjectiveWeights
	if !w.IsDefault() {
		t.Fatal("zero value must be the default")
	}
	r := w.Resolved()
	if r.Acquire != 1 || r.Release != 1 {
		t.Fatalf("zero value resolves to %+v, want {1 1}", r)
	}
	if !(ObjectiveWeights{Acquire: 1, Release: 1}).IsDefault() {
		t.Fatal("explicit {1,1} must count as default")
	}
	if (ObjectiveWeights{Acquire: 2}).IsDefault() {
		t.Fatal("{2,0} is not default (0 resolves to 1, but 2 does not)")
	}
	if got := (ObjectiveWeights{Acquire: 2}).Resolved(); got.Acquire != 2 || got.Release != 1 {
		t.Fatalf("{2,0} resolves to %+v, want {2 1}", got)
	}
}

// TestWeightsDefaultMatchesUnset pins that setting the weights to their
// resolved defaults cannot change any probability: the weighted objective
// must be the exact expression the unweighted encoder built.
func TestWeightsDefaultMatchesUnset(t *testing.T) {
	o := obsWith(
		window.Window{RelEvents: cands(wk("C::f")), AcqEvents: cands(rk("C::f"))},
		window.Window{RelEvents: cands(wk("C::g"), wk("C::f")), AcqEvents: cands(rk("C::g"))},
	)
	base := solveOK(t, o, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Weights = ObjectiveWeights{Acquire: 1, Release: 1}
	explicit := solveOK(t, o, cfg)
	if base.Objective != explicit.Objective {
		t.Fatalf("objective drifted: unset=%v explicit-default=%v", base.Objective, explicit.Objective)
	}
	for k, p := range base.Acquires {
		if explicit.Acquires[k] != p {
			t.Fatalf("acquire prob for %v drifted: %v vs %v", k, p, explicit.Acquires[k])
		}
	}
	for k, p := range base.Releases {
		if explicit.Releases[k] != p {
			t.Fatalf("release prob for %v drifted: %v vs %v", k, p, explicit.Releases[k])
		}
	}
}

// TestWeightsScalePenalties checks that non-default weights actually reach
// the objective: doubling both role weights on a workload that pays real
// rareness penalties must raise the LP optimum.
func TestWeightsScalePenalties(t *testing.T) {
	// One op serving many windows: tagging it is unavoidable and costs a
	// rareness penalty that the weights multiply.
	o := obsWith(
		window.Window{RelEvents: cands(wk("C::f")), AcqEvents: cands(rk("C::f"))},
		window.Window{RelEvents: cands(wk("C::f")), AcqEvents: cands(rk("C::f"))},
		window.Window{RelEvents: cands(wk("C::f")), AcqEvents: cands(rk("C::f"))},
	)
	base := solveOK(t, o, DefaultConfig())
	if base.Objective <= 0 {
		t.Fatalf("workload pays no penalty (objective %v); test is vacuous", base.Objective)
	}
	cfg := DefaultConfig()
	cfg.Weights = ObjectiveWeights{Acquire: 2, Release: 2}
	heavy := solveOK(t, o, cfg)
	if heavy.Objective <= base.Objective {
		t.Fatalf("doubled weights did not raise the objective: %v -> %v", base.Objective, heavy.Objective)
	}
	// The scaled problem keeps the same inference on this workload — the
	// weights shift costs, not the constraint structure.
	if len(heavy.AcquireSet) != len(base.AcquireSet) || len(heavy.ReleaseSet) != len(base.ReleaseSet) {
		t.Fatalf("uniform scaling changed the inferred sets: %v/%v vs %v/%v",
			base.AcquireSet, base.ReleaseSet, heavy.AcquireSet, heavy.ReleaseSet)
	}
}
