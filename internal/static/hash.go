// ProgramHash: a content address for the analyzed structure of a
// program. Two programs with the same hash produce bit-identical static
// analyses, so servers can cache static reports by hash — including
// across cluster nodes — without ever re-walking the program.
package static

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"sort"

	"sherlock/internal/prog"
)

// programHashVersion tags the canonical encoding below; bump it whenever
// the walk semantics or the encoding change, so stale cache entries can
// never alias a new analysis.
const programHashVersion = "sherlock-static-v1"

// ProgramHash hashes the structure the static analysis depends on:
// methods (sorted by name), tests in declaration order, statement trees,
// and the hidden-method skip list. Ground-truth annotations beyond
// HiddenMethods, titles, and paper metadata do not influence the walk and
// are excluded. Requires a finalizable program; returns a defined error
// (never panics) on statement types the walker has no semantics for.
func ProgramHash(p *prog.Program) (string, error) {
	if err := p.Finalize(); err != nil {
		return "", err
	}
	h := sha256.New()
	io.WriteString(h, programHashVersion+"\n")
	fmt.Fprintf(h, "app %s\n", p.Name)

	names := make([]string, 0, len(p.Methods))
	for n := range p.Methods {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "method %s\n", n)
		if err := hashStmts(h, p.Methods[n].Body); err != nil {
			return "", err
		}
	}
	for _, t := range p.Tests {
		fmt.Fprintf(h, "test %s init %s\n", t.Name, t.Init)
		if err := hashStmts(h, t.Body); err != nil {
			return "", err
		}
	}
	for _, m := range sortedSet(p.Truth.HiddenMethods) {
		fmt.Fprintf(h, "hidden %s\n", m)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// hashStmts writes a canonical encoding of a statement tree. Every field
// the walker reads is included; purely temporal fields (durations,
// jitters, backoffs) are not — they cannot change a run-free analysis.
func hashStmts(h hash.Hash, stmts []prog.Stmt) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case *prog.Compute:
			io.WriteString(h, "compute\n")
		case *prog.Sleep:
			io.WriteString(h, "sleep\n")
		case *prog.Read:
			fmt.Fprintf(h, "read %s %s\n", st.Field, st.Slot)
		case *prog.Write:
			fmt.Fprintf(h, "write %s %s\n", st.Field, st.Slot)
		case *prog.SpinUntil:
			fmt.Fprintf(h, "spin %s %s\n", st.Field, st.Slot)
		case *prog.Call:
			fmt.Fprintf(h, "call %s %s\n", st.Method, st.Slot)
		case *prog.Loop:
			fmt.Fprintf(h, "loop %d {\n", st.N)
			if err := hashStmts(h, st.Body); err != nil {
				return err
			}
			io.WriteString(h, "}\n")
		case *prog.AcquireLock:
			fmt.Fprintf(h, "acquire %s\n", st.Lock)
		case *prog.ReleaseLock:
			fmt.Fprintf(h, "release %s\n", st.Lock)
		case *prog.SemSet:
			fmt.Fprintf(h, "semset %s\n", st.Sem)
		case *prog.SemWait:
			fmt.Fprintf(h, "semwait %s\n", st.Sem)
		case *prog.WaitAll:
			fmt.Fprintf(h, "waitall %v\n", st.Sems)
		case *prog.Post:
			fmt.Fprintf(h, "post %s %s\n", st.Queue, st.API)
		case *prog.Receive:
			fmt.Fprintf(h, "receive %s %s %s %s\n", st.Queue, st.Handler, st.HandlerSlot, st.API)
		case *prog.Fork:
			fmt.Fprintf(h, "fork %s %s %s %s\n", st.API.APIName(), st.Method, st.Slot, st.Handle)
		case *prog.Join:
			fmt.Fprintf(h, "join %s %s\n", st.API.APIName(), st.Handle)
		case *prog.ContinueWith:
			fmt.Fprintf(h, "continuewith %s %s %s %s\n", st.Handle, st.Method, st.Slot, st.NewHandle)
		case *prog.UnsafeCall:
			fmt.Fprintf(h, "unsafe %s %s %d\n", st.API, st.Slot, st.Acc)
		case *prog.RWAcquireRead:
			fmt.Fprintf(h, "rwacqread %s\n", st.Lock)
		case *prog.RWReleaseRead:
			fmt.Fprintf(h, "rwrelread %s\n", st.Lock)
		case *prog.RWUpgrade:
			fmt.Fprintf(h, "rwupgrade %s\n", st.Lock)
		case *prog.RWDowngrade:
			fmt.Fprintf(h, "rwdowngrade %s\n", st.Lock)
		case *prog.HiddenAcquire:
			fmt.Fprintf(h, "hacquire %s\n", st.Lock)
		case *prog.HiddenRelease:
			fmt.Fprintf(h, "hrelease %s\n", st.Lock)
		case *prog.HiddenSignal:
			fmt.Fprintf(h, "hsignal %s\n", st.Sem)
		case *prog.HiddenWait:
			fmt.Fprintf(h, "hwait %s\n", st.Sem)
		case *prog.HiddenFork:
			fmt.Fprintf(h, "hfork %s %s %s\n", st.Method, st.Slot, st.Handle)
		case *prog.EnsureInit:
			fmt.Fprintf(h, "ensureinit %s %s\n", st.Class, st.Ctor)
		case *prog.FinalizeObj:
			fmt.Fprintf(h, "finalizeobj %s %s\n", st.Slot, st.Method)
		case *prog.LibWait:
			fmt.Fprintf(h, "libwait %s %s\n", st.API, st.Handle)
		case *prog.BarrierWait:
			fmt.Fprintf(h, "barrier %s %d\n", st.Barrier, st.Parties)
		default:
			return fmt.Errorf("%w: %T", ErrUnknownStmt, s)
		}
	}
	return nil
}
