// Package static derives SherLock constraints from program structure
// alone — no execution, no traces. It walks the internal/prog DSL the way
// internal/sched would execute it (same event vocabulary, same
// hidden-method handling, same library API names) but abstractly: logical
// threads instead of scheduled ones, vector clocks instead of virtual
// time, loop bodies unrolled a bounded number of times instead of run.
//
// The output is a synthetic window.Observations accumulator in exactly
// the vocabulary internal/solver already encodes: every statically
// derivable constraint family falls out of the existing encoding —
// variable and type constraints (Eq. 1: role variables only for capable
// kinds) from the candidate keys, pair constraints (Eq. 6–7) from
// class/field structure, Single-Role (Eq. 8) from the library-API set,
// and Syncs-are-Rare (Eq. 3–4) with occurrence coefficients taken from
// static call-site frequency rather than dynamic counts. Only the two
// genuinely dynamic families are absent: acquisition-time variation
// (Eq. 5 — there are no durations to rank, so solvers over this output
// must disable the hypothesis) and the data-race feedback is approximate
// (derived from the emitted window shapes, not observed races).
//
// Happens-before is tracked along fork/join/continuation edges only
// (Fork, HiddenFork, ContinueWith, FinalizeObj, Join, LibWait, test-init
// edges). Pairs ordered by those edges emit one window orientation; pairs
// the analysis cannot order emit both — a conservative over-approximation
// that errs toward more evidence, never less. Windows ARE generated
// across fork edges: that is precisely how fork/join APIs end up inside
// acquire/release windows and get inferred as synchronization.
//
// Everything is deterministic: threads, conflict classes, and window
// enumeration follow fixed orders, so two analyses of the same finalized
// program produce bit-identical observations (and downstream, bit-
// identical reports) — the property the server's content-addressed static
// cache relies on.
package static

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"sherlock/internal/obs"
	"sherlock/internal/prog"
	"sherlock/internal/trace"
	"sherlock/internal/window"
)

// Config tunes the abstract walk.
type Config struct {
	// Window supplies the per-pair cap and unsafe-API toggle; Near is
	// meaningless without time and ignored.
	Window window.Config
	// LoopUnroll bounds how many iterations of a Loop body are walked
	// (default 3: enough to see a fork-in-loop twice and stabilize static
	// occurrence counts without quadratic blowup).
	LoopUnroll int
	// Horizon bounds how many operations on each side of a conflicting
	// access join its window — the static stand-in for the Near time
	// filter (default 32).
	Horizon int
	// MaxCallDepth bounds Call inlining; exceeding it (unbounded recursion
	// in the DSL) is a defined error, not a hang (default 32).
	MaxCallDepth int
	// MaxClassOps bounds the conflict-eligible operations considered per
	// conflict class per test (default 64), bounding the pair enumeration.
	MaxClassOps int
	// MaxThreads bounds logical threads per test (default 256). A method
	// that forks itself spawns a new thread on every walk; execution
	// terminates because each run is finite, but the abstract sweep would
	// not — exceeding the budget is a defined error (default 256).
	MaxThreads int
}

// DefaultConfig returns the default analysis parameters.
func DefaultConfig() Config {
	return Config{Window: window.DefaultConfig(), LoopUnroll: 3, Horizon: 32, MaxCallDepth: 32, MaxClassOps: 64, MaxThreads: 256}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Window.PerPairCap == 0 {
		c.Window = d.Window
	}
	if c.LoopUnroll <= 0 {
		c.LoopUnroll = d.LoopUnroll
	}
	if c.Horizon <= 0 {
		c.Horizon = d.Horizon
	}
	if c.MaxCallDepth <= 0 {
		c.MaxCallDepth = d.MaxCallDepth
	}
	if c.MaxClassOps <= 0 {
		c.MaxClassOps = d.MaxClassOps
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = d.MaxThreads
	}
	return c
}

// Analysis is the result of one static pass.
type Analysis struct {
	App string
	// Obs holds the synthetic observations, ready for solver encoding.
	// Durations is empty — disable Hypotheses.AcqTimeVaries when solving.
	Obs *window.Observations
	// ProgramHash content-addresses the analyzed structure (see
	// ProgramHash); two programs with equal hashes produce equal analyses.
	ProgramHash string
	// Threads / Ops / Windows summarize the walk across all tests.
	Threads int
	Ops     int
	Windows int
}

// ErrCallDepth is wrapped by Analyze when Call inlining exceeds
// Config.MaxCallDepth — the static signature of unbounded recursion.
var ErrCallDepth = errors.New("static: call depth exceeded")

// ErrThreadBudget is wrapped by Analyze when a test's walk spawns more
// than Config.MaxThreads logical threads — the static signature of a
// method that transitively forks itself.
var ErrThreadBudget = errors.New("static: thread budget exceeded")

// ErrUnknownStmt is wrapped by Analyze (and ProgramHash) for a statement
// type the walker has no semantics for. The scheduler panics on these;
// the static pass reports instead, because it also runs on untrusted
// programs server-side.
var ErrUnknownStmt = errors.New("static: unknown statement type")

// Analyze walks p (finalizing it if needed) and returns its static
// observations. p is not mutated beyond Finalize.
func Analyze(p *prog.Program, cfg Config) (*Analysis, error) {
	return AnalyzeSpan(p, cfg, nil)
}

// AnalyzeSpan is Analyze recording its work under parent: a "static"
// child span with per-test children (thread/op/window counts, all
// deterministic). A nil parent costs nothing.
func AnalyzeSpan(p *prog.Program, cfg Config, parent *obs.Span) (*Analysis, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	hash, err := ProgramHash(p)
	if err != nil {
		return nil, err
	}
	span := parent.Child("static", obs.Str("app", p.Name), obs.Int("tests", len(p.Tests)))
	defer span.End()

	an := &Analysis{App: p.Name, ProgramHash: hash, Obs: window.NewObservations(cfg.Window)}
	for _, t := range p.Tests {
		w := &walker{p: p, cfg: cfg, hidden: p.Truth.HiddenMethods,
			handles: map[string]*lthread{}, inits: map[string]bool{}, apis: map[string]bool{}}
		if err := w.walkTest(t); err != nil {
			return nil, fmt.Errorf("static: %s/%s: %w", p.Name, t.Name, err)
		}
		ws := w.windows(t.Name)
		tspan := span.Child("test", obs.Str("test", t.Name))
		tspan.Annotate(
			obs.Int("threads", len(w.threads)),
			obs.Int("ops", w.opCount()),
			obs.Int("windows", len(ws)))
		tspan.End()
		an.Obs.AddWindows(ws)
		an.Obs.AddStats(nil, sortedSet(w.apis))
		an.Threads += len(w.threads)
		an.Ops += w.opCount()
		an.Windows += len(ws)
	}
	span.Annotate(
		obs.Int("threads", an.Threads),
		obs.Int("ops", an.Ops),
		obs.Int("windows", an.Windows))
	return an, nil
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// clock is a vector clock over logical thread ids.
type clock []int

func (c clock) clone() clock { return append(clock(nil), c...) }

func (c *clock) ensure(n int) {
	for len(*c) <= n {
		*c = append(*c, 0)
	}
}

func (c *clock) merge(o clock) {
	c.ensure(len(o) - 1)
	for i, v := range o {
		if v > (*c)[i] {
			(*c)[i] = v
		}
	}
}

// at returns component i, tolerating short clocks.
func (c clock) at(i int) int {
	if i < len(c) {
		return c[i]
	}
	return 0
}

// op is one abstract operation a logical thread performs — the static
// analogue of a trace event.
type op struct {
	key  trace.Key
	site int
	lib  bool
	acc  trace.Acc
	// conflict identifies the abstract memory location ("f:<field>#<slot>"
	// for heap accesses, "u:<slot>" for unsafe library calls); empty when
	// the op cannot participate in a conflicting pair.
	conflict string
	// vc is the thread's vector clock at emission (own component already
	// incremented), so op a happens-before op b iff b.vc covers a's stamp.
	vc clock
}

// lthread is one logical thread of the abstract execution. A thread runs
// either a registered method under pushCall semantics (forked threads:
// hasBody false) or an explicit statement list (test bodies: hasBody
// true, framed by method Begin/End when method is non-empty — the
// runTestBody pattern).
type lthread struct {
	id      int
	method  string
	body    []prog.Stmt
	hasBody bool
	spawn   clock

	vc      clock
	ops     []op
	walking bool
	done    bool
}

// walker abstractly executes one test.
type walker struct {
	p       *prog.Program
	cfg     Config
	hidden  map[string]bool
	threads []*lthread
	handles map[string]*lthread
	inits   map[string]bool
	apis    map[string]bool
}

func (w *walker) opCount() int {
	n := 0
	for _, th := range w.threads {
		n += len(th.ops)
	}
	return n
}

// walkTest mirrors the scheduler's test setup: with an Init method, the
// main thread runs Init and the body executes as a named method in a
// forked thread ordered after it (Figure 3.E); otherwise the body runs
// on the main thread directly.
func (w *walker) walkTest(t *prog.Test) error {
	main, err := w.spawnBody("", t.Body, clock{})
	if err != nil {
		return err
	}
	if t.Init != "" {
		main.body = nil // the body moves to a forked thread below
		main.walking = true
		if err := w.walkCall(main, t.Init, 0); err != nil {
			return err
		}
		// pushMethodFrame names the forked body after the test itself.
		body, err := w.spawnBody(t.Name, t.Body, main.vc.clone())
		if err != nil {
			return err
		}
		if err := w.walkThread(body); err != nil {
			return err
		}
		main.vc.merge(body.vc)
		main.walking = false
		main.done = true
	} else if err := w.walkThread(main); err != nil {
		return err
	}
	// Threads nobody joined (fire-and-forget forks, GC threads) still
	// need walking; spawn order keeps this deterministic. Walking may
	// spawn more threads, so re-scan until quiescent.
	for i := 0; i < len(w.threads); i++ {
		if err := w.walkThread(w.threads[i]); err != nil {
			return err
		}
	}
	return nil
}

// spawn registers a new logical thread running a registered method,
// starting from vc. The caller either walks it on demand (join edges) or
// leaves it for walkTest's final sweep.
func (w *walker) spawn(method string, vc clock) (*lthread, error) {
	if len(w.threads) >= w.cfg.MaxThreads {
		return nil, fmt.Errorf("%w: %d logical threads (self-forking method?)", ErrThreadBudget, len(w.threads))
	}
	th := &lthread{id: len(w.threads), method: method, spawn: vc, vc: vc.clone()}
	w.threads = append(w.threads, th)
	return th, nil
}

// spawnBody registers a thread running an explicit statement list (test
// bodies), framed as method when non-empty.
func (w *walker) spawnBody(method string, body []prog.Stmt, vc clock) (*lthread, error) {
	th, err := w.spawn(method, vc)
	if err != nil {
		return nil, err
	}
	th.body, th.hasBody = body, true
	return th, nil
}

// walkThread runs a spawned thread to completion (idempotent). A thread
// forced to walk while already walking means the join graph has a cycle —
// a malformed program, reported rather than recursed into.
func (w *walker) walkThread(th *lthread) error {
	if th.done {
		return nil
	}
	if th.walking {
		return fmt.Errorf("static: cyclic join/continuation through thread %d", th.id)
	}
	th.walking = true
	defer func() { th.walking = false }()
	var err error
	switch {
	case th.hasBody && th.method != "":
		err = w.walkWrapped(th, th.method, th.body, 0)
	case th.hasBody:
		err = w.walkStmts(th, th.body, 0)
	default:
		err = w.walkCall(th, th.method, 0)
	}
	if err != nil {
		return err
	}
	th.done = true
	return nil
}

// emit appends one abstract operation, advancing the thread's clock.
func (w *walker) emit(th *lthread, key trace.Key, site int, lib bool, acc trace.Acc, conflict string) {
	th.vc.ensure(th.id)
	th.vc[th.id]++
	th.ops = append(th.ops, op{key: key, site: site, lib: lib, acc: acc, conflict: conflict, vc: th.vc.clone()})
	if lib {
		w.apis[key.Name()] = true
	}
}

// libPair emits the immediately-before / immediately-after call-site pair
// of a library API, the static mirror of sched's libBegin/libEnd.
func (w *walker) libPair(th *lthread, api string, site int) {
	w.emit(th, trace.KeyFor(trace.KindBegin, api), site, true, trace.AccNone, "")
	w.emit(th, trace.KeyFor(trace.KindEnd, api), site, true, trace.AccNone, "")
}

// walkCall inlines an application method call under pushCall semantics:
// Begin/End events unless the method is skip-listed.
func (w *walker) walkCall(th *lthread, method string, depth int) error {
	if depth > w.cfg.MaxCallDepth {
		return fmt.Errorf("%w: inlining %q at depth %d", ErrCallDepth, method, depth)
	}
	m, ok := w.p.Methods[method]
	if !ok {
		return fmt.Errorf("static: call of unknown method %q", method)
	}
	return w.walkWrapped(th, m.Name, m.Body, depth)
}

// walkWrapped walks body framed by method Begin/End events (suppressed
// for hidden methods — the body still walks, mirroring execution).
func (w *walker) walkWrapped(th *lthread, name string, body []prog.Stmt, depth int) error {
	if !w.hidden[name] {
		w.emit(th, trace.KeyFor(trace.KindBegin, name), 0, false, trace.AccNone, "")
	}
	if err := w.walkStmts(th, body, depth); err != nil {
		return err
	}
	if !w.hidden[name] {
		w.emit(th, trace.KeyFor(trace.KindEnd, name), 0, false, trace.AccNone, "")
	}
	return nil
}

// mergeHandle folds the completed state of the thread bound to handle
// into th (join semantics). Unknown handles are tolerated: the binding
// fork may live in a thread this walk has no order against, and a
// missing edge only means more windows get both orientations.
func (w *walker) mergeHandle(th *lthread, handle string) error {
	child, ok := w.handles[handle]
	if !ok {
		return nil
	}
	if err := w.walkThread(child); err != nil {
		return err
	}
	th.vc.merge(child.vc)
	return nil
}

func fieldClass(field, slot string) string { return "f:" + field + "#" + slot }

// walkStmts interprets a statement list, mirroring sched/exec.go's event
// emission statement by statement.
func (w *walker) walkStmts(th *lthread, stmts []prog.Stmt, depth int) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case *prog.Compute, *prog.Sleep:
			// No events.

		case *prog.Read:
			w.emit(th, trace.KeyFor(trace.KindRead, st.Field), st.Site(), false, trace.AccRead, fieldClass(st.Field, st.Slot))

		case *prog.Write:
			w.emit(th, trace.KeyFor(trace.KindWrite, st.Field), st.Site(), false, trace.AccWrite, fieldClass(st.Field, st.Slot))

		case *prog.SpinUntil:
			// Dynamically one read per poll; statically one representative.
			w.emit(th, trace.KeyFor(trace.KindRead, st.Field), st.Site(), false, trace.AccRead, fieldClass(st.Field, st.Slot))

		case *prog.Call:
			if err := w.walkCall(th, st.Method, depth+1); err != nil {
				return err
			}

		case *prog.Loop:
			n := st.N
			if n > w.cfg.LoopUnroll {
				n = w.cfg.LoopUnroll
			}
			for i := 0; i < n; i++ {
				if err := w.walkStmts(th, st.Body, depth); err != nil {
					return err
				}
			}

		case *prog.AcquireLock:
			w.libPair(th, prog.APIMonitorEnter, st.Site())
		case *prog.ReleaseLock:
			w.libPair(th, prog.APIMonitorExit, st.Site())
		case *prog.SemSet:
			w.libPair(th, prog.APISemSet, st.Site())
		case *prog.SemWait:
			w.libPair(th, prog.APISemWait, st.Site())
		case *prog.WaitAll:
			w.libPair(th, prog.APIWaitAll, st.Site())

		case *prog.Post:
			api := st.API
			if api == "" {
				api = prog.APIPost
			}
			w.libPair(th, api, st.Site())

		case *prog.Receive:
			api := st.API
			if api == "" {
				api = prog.APIReceive
			}
			w.libPair(th, api, st.Site())
			if st.Handler != "" {
				if err := w.walkCall(th, st.Handler, depth+1); err != nil {
					return err
				}
			}

		case *prog.Fork:
			w.libPair(th, st.API.APIName(), st.Site())
			child, err := w.spawn(st.Method, th.vc.clone())
			if err != nil {
				return err
			}
			if st.Handle != "" {
				w.handles[st.Handle] = child
			}

		case *prog.HiddenFork:
			child, err := w.spawn(st.Method, th.vc.clone())
			if err != nil {
				return err
			}
			if st.Handle != "" {
				w.handles[st.Handle] = child
			}

		case *prog.Join:
			w.libPair(th, st.API.APIName(), st.Site())
			if err := w.mergeHandle(th, st.Handle); err != nil {
				return err
			}

		case *prog.LibWait:
			w.libPair(th, st.API, st.Site())
			if err := w.mergeHandle(th, st.Handle); err != nil {
				return err
			}

		case *prog.ContinueWith:
			w.libPair(th, prog.APIContinueWith, st.Site())
			start := th.vc.clone()
			if ant, ok := w.handles[st.Handle]; ok {
				if err := w.walkThread(ant); err != nil {
					return err
				}
				start.merge(ant.vc)
			}
			child, err := w.spawn(st.Method, start)
			if err != nil {
				return err
			}
			if st.NewHandle != "" {
				w.handles[st.NewHandle] = child
			}

		case *prog.UnsafeCall:
			cls := ""
			if st.Slot != "" { // slot "" maps to object id 0: not conflict-eligible
				cls = "u:" + st.Slot
			}
			w.emit(th, trace.KeyFor(trace.KindBegin, st.API), st.Site(), true, st.Acc, cls)
			w.emit(th, trace.KeyFor(trace.KindEnd, st.API), st.Site(), true, trace.AccNone, "")

		case *prog.RWAcquireRead:
			w.libPair(th, prog.APIRWAcquireRead, st.Site())
		case *prog.RWReleaseRead:
			w.libPair(th, prog.APIRWReleaseRead, st.Site())
		case *prog.RWUpgrade:
			w.libPair(th, prog.APIRWUpgrade, st.Site())
		case *prog.RWDowngrade:
			w.libPair(th, prog.APIRWDowngrade, st.Site())

		case *prog.BarrierWait:
			w.libPair(th, prog.APIBarrier, st.Site())

		case *prog.HiddenAcquire, *prog.HiddenRelease, *prog.HiddenSignal, *prog.HiddenWait:
			// Invisible synchronization: no events, and no static order —
			// the analysis must infer around it exactly like the dynamic one.

		case *prog.EnsureInit:
			if !w.inits[st.Class] {
				w.inits[st.Class] = true
				if err := w.walkCall(th, st.Ctor, depth+1); err != nil {
					return err
				}
			}

		case *prog.FinalizeObj:
			// Finalizer runs in a dedicated GC thread ordered after this
			// statement; nobody joins it.
			if _, err := w.spawn(st.Method, th.vc.clone()); err != nil {
				return err
			}

		default:
			return fmt.Errorf("%w: %T", ErrUnknownStmt, s)
		}
	}
	return nil
}

// hb reports whether a happens-before b: b's clock covers a's stamp.
func hb(a, b *op, athread int) bool {
	return b.vc.at(athread) >= a.vc.at(athread)
}

// located is one conflict-eligible op with its coordinates.
type located struct {
	th  *lthread
	idx int
}

// windows enumerates conflicting pairs across threads and synthesizes
// their acquire/release windows, deterministic in (class, thread, index)
// order. testName scopes the window UIDs.
func (w *walker) windows(testName string) []window.Window {
	byClass := map[string][]located{}
	for _, th := range w.threads {
		for i := range th.ops {
			o := &th.ops[i]
			if o.conflict == "" || o.acc == trace.AccNone {
				continue
			}
			if o.lib && !w.cfg.Window.UseUnsafeAPIs {
				continue
			}
			if len(byClass[o.conflict]) >= w.cfg.MaxClassOps {
				continue
			}
			byClass[o.conflict] = append(byClass[o.conflict], located{th: th, idx: i})
		}
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	var out []window.Window
	perPair := map[window.PairID]int{}
	uid := 0
	add := func(x, y located) {
		pid := window.PairID{First: x.th.ops[x.idx].site, Second: y.th.ops[y.idx].site}
		if perPair[pid] >= w.cfg.Window.PerPairCap {
			return
		}
		perPair[pid]++
		win := w.buildWindow(x, y)
		win.Test = testName
		win.UID = "s:" + testName + ":" + strconv.Itoa(uid)
		uid++
		out = append(out, win)
	}
	for _, c := range classes {
		ops := byClass[c]
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				a, b := ops[i], ops[j]
				if a.th.id == b.th.id {
					continue
				}
				ao, bo := &a.th.ops[a.idx], &b.th.ops[b.idx]
				if ao.acc != trace.AccWrite && bo.acc != trace.AccWrite {
					continue
				}
				aHBb := hb(ao, bo, a.th.id)
				bHBa := hb(bo, ao, b.th.id)
				switch {
				case aHBb && !bHBa:
					add(a, b)
				case bHBa && !aHBb:
					add(b, a)
				default:
					// Unordered (or degenerate): both orientations.
					add(a, b)
					add(b, a)
				}
			}
		}
	}
	return out
}

// buildWindow is the static analogue of window.BuildWindow for the
// ordered conflict (x first, y second): the release side is x's thread's
// operations after x, the acquire side y's thread's operations before y,
// both bounded by the horizon and filtered to those that could fall
// between the two accesses under the known happens-before order.
func (w *walker) buildWindow(x, y located) window.Window {
	xo, yo := &x.th.ops[x.idx], &y.th.ops[y.idx]
	win := window.Window{
		App: w.p.Name, ThreadA: x.th.id, ThreadB: y.th.id,
		Pair: window.PairID{First: xo.site, Second: yo.site},
		TA:   int64(x.idx), TB: int64(y.idx),
	}
	for i := x.idx + 1; i < len(x.th.ops) && i <= x.idx+w.cfg.Horizon; i++ {
		e := &x.th.ops[i]
		// An op ordered after y would dynamically fall outside the window.
		if hb(yo, e, y.th.id) {
			break
		}
		win.RelEvents = append(win.RelEvents, window.CandEvent{Key: e.key, Time: int64(i)})
	}
	lo := y.idx - w.cfg.Horizon
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < y.idx; i++ {
		e := &y.th.ops[i]
		// An op ordered before x would dynamically precede the window.
		if hb(e, xo, y.th.id) {
			continue
		}
		win.AcqEvents = append(win.AcqEvents, window.CandEvent{Key: e.key, Time: int64(i)})
	}
	return win
}
