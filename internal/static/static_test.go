package static

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"sherlock/internal/apps"
	"sherlock/internal/prog"
	"sherlock/internal/trace"
	"sherlock/internal/window"
)

// fingerprint serializes everything downstream consumers can observe about
// an analysis, so byte-equality of fingerprints means byte-identical
// reports.
func fingerprint(an *Analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "app=%s hash=%s threads=%d ops=%d windows=%d runs=%d\n",
		an.App, an.ProgramHash, an.Threads, an.Ops, an.Windows, an.Obs.Runs)
	for _, w := range an.Obs.Windows {
		fmt.Fprintf(&b, "w %s %s pair=%v a=%d b=%d ta=%d tb=%d\n",
			w.UID, w.Test, w.Pair, w.ThreadA, w.ThreadB, w.TA, w.TB)
		for _, e := range w.RelEvents {
			fmt.Fprintf(&b, " r %s @%d\n", e.Key, e.Time)
		}
		for _, e := range w.AcqEvents {
			fmt.Fprintf(&b, " a %s @%d\n", e.Key, e.Time)
		}
	}
	apis := make([]string, 0, len(an.Obs.LibAPIs))
	for a := range an.Obs.LibAPIs {
		apis = append(apis, a)
	}
	sort.Strings(apis)
	fmt.Fprintf(&b, "apis=%v\n", apis)
	return b.String()
}

// TestAnalyzeDeterministicAllApps: two analyses of the same app must be
// bit-identical (the content-addressed cache contract), and every app must
// yield a non-trivial walk — threads, conflict-eligible ops, and windows.
func TestAnalyzeDeterministicAllApps(t *testing.T) {
	for _, p := range apps.All() {
		a1, err := Analyze(p, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		a2, err := Analyze(p, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: second analysis: %v", p.Name, err)
		}
		f1, f2 := fingerprint(a1), fingerprint(a2)
		if f1 != f2 {
			t.Errorf("%s: analyses differ between runs:\n%s\nvs\n%s", p.Name, f1, f2)
		}
		if a1.Threads == 0 || a1.Ops == 0 {
			t.Errorf("%s: degenerate walk: %d threads, %d ops", p.Name, a1.Threads, a1.Ops)
		}
		if a1.Windows == 0 {
			t.Errorf("%s: no static windows synthesized", p.Name)
		}
		if len(a1.ProgramHash) != 64 {
			t.Errorf("%s: program hash %q is not full sha256 hex", p.Name, a1.ProgramHash)
		}
		if a1.Obs.Runs != len(p.Tests) {
			t.Errorf("%s: Runs = %d, want one per test (%d)", p.Name, a1.Obs.Runs, len(p.Tests))
		}
	}
}

// conflictProgram builds a two-thread read/write conflict whose writer
// calls helper right before the access, so the helper's frame events land
// inside every window.
func conflictProgram(hideHelper bool) *prog.Program {
	p := prog.New("T-hidden", "test")
	p.AddMethod("helper", prog.Cp(10))
	p.AddMethod("writer", prog.Do("helper", "o"), prog.Wr("C::f", "o", 1))
	p.AddMethod("reader", prog.Rd("C::f", "o"))
	p.AddTest("t", prog.Go(prog.ForkTaskRun, "writer", "o", "h"), prog.Rd("C::f", "o"), prog.JoinT("h"))
	if hideHelper {
		p.Truth.HiddenMethods["helper"] = true
	}
	return p
}

// TestHiddenMethodsSuppressed: skip-listed methods must emit no frame
// events — their Begin/End keys appear in no window — while the identical
// program without the skip list shows them.
func TestHiddenMethodsSuppressed(t *testing.T) {
	has := func(an *Analysis, k trace.Key) bool {
		for _, w := range an.Obs.Windows {
			for _, e := range w.RelEvents {
				if e.Key == k {
					return true
				}
			}
			for _, e := range w.AcqEvents {
				if e.Key == k {
					return true
				}
			}
		}
		return false
	}
	visible, err := Analyze(conflictProgram(false), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hidden, err := Analyze(conflictProgram(true), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bk := trace.KeyFor(trace.KindBegin, "helper")
	if !has(visible, bk) {
		t.Fatalf("visible analysis lost %s (windows: %d)", bk, visible.Windows)
	}
	if has(hidden, bk) {
		t.Errorf("hidden method %s leaked into windows", bk)
	}
	if hidden.Windows == 0 {
		t.Errorf("hiding a method suppressed windows entirely")
	}
}

// TestForkJoinOrientation: a write strictly ordered before a read by a
// fork edge must produce only the write→read orientation, with the fork
// API on the release side — the mechanism by which fork/join APIs become
// inferable synchronization.
func TestForkJoinOrientation(t *testing.T) {
	p := prog.New("T-orient", "test")
	p.AddMethod("reader", prog.Rd("C::f", "o"))
	p.AddTest("t",
		prog.Wr("C::f", "o", 1),
		prog.Go(prog.ForkTaskRun, "reader", "o", "h"),
		prog.JoinT("h"),
	)
	an, err := Analyze(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if an.Windows != 1 {
		t.Fatalf("windows = %d, want exactly 1 (ordered pair, one orientation)", an.Windows)
	}
	w := an.Obs.Windows[0]
	found := false
	for _, e := range w.RelEvents {
		if e.Key.Name() == prog.ForkTaskRun.APIName() {
			found = true
		}
	}
	if !found {
		t.Errorf("fork API missing from release side: %+v", w.RelEvents)
	}
}

// TestRWUpgradeDoubleRole: the double-role upgrade API of App-8
// (UpgradeToWriterLock acquires the write lock AND releases the read hold)
// must surface as a library API with both Begin and End events present in
// the synthesized windows, so the solver can assign each key its role.
func TestRWUpgradeDoubleRole(t *testing.T) {
	p, err := apps.ByName("App-8")
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !an.Obs.LibAPIs[prog.APIRWUpgrade] {
		t.Fatalf("App-8 static analysis missing %s in LibAPIs", prog.APIRWUpgrade)
	}
	seen := map[trace.Key]bool{}
	for _, w := range an.Obs.Windows {
		for _, e := range w.RelEvents {
			seen[e.Key] = true
		}
		for _, e := range w.AcqEvents {
			seen[e.Key] = true
		}
	}
	for _, k := range []trace.Key{prog.BK(prog.APIRWUpgrade), prog.EK(prog.APIRWUpgrade)} {
		if !seen[k] {
			t.Errorf("App-8 windows never contain %s", k)
		}
	}
}

// TestRecursionIsDefinedError: unbounded recursion through Call must
// surface as ErrCallDepth, not a stack overflow.
func TestRecursionIsDefinedError(t *testing.T) {
	p := prog.New("T-rec", "test")
	p.AddMethod("r", prog.Do("r", "o"))
	p.AddTest("t", prog.Do("r", "o"))
	_, err := Analyze(p, DefaultConfig())
	if !errors.Is(err, ErrCallDepth) {
		t.Fatalf("err = %v, want ErrCallDepth", err)
	}
}

// bogusStmt is a statement type the walker has no semantics for.
type bogusStmt struct{ site int }

func (b *bogusStmt) Site() int     { return b.site }
func (b *bogusStmt) SetSite(i int) { b.site = i }

// TestUnknownStmtIsDefinedError: both the walk and the hash must reject
// unknown statement types with ErrUnknownStmt — the scheduler panics here,
// the static pass must not (it runs on untrusted programs server-side).
func TestUnknownStmtIsDefinedError(t *testing.T) {
	p := prog.New("T-unk", "test")
	p.AddTest("t", &bogusStmt{})
	if _, err := Analyze(p, DefaultConfig()); !errors.Is(err, ErrUnknownStmt) {
		t.Fatalf("Analyze err = %v, want ErrUnknownStmt", err)
	}
	if _, err := ProgramHash(p); !errors.Is(err, ErrUnknownStmt) {
		t.Fatalf("ProgramHash err = %v, want ErrUnknownStmt", err)
	}
}

// TestSelfForkIsDefinedError: a method that forks itself would spawn
// logical threads forever under the final sweep; the thread budget must
// cut it off with ErrThreadBudget, not hang.
func TestSelfForkIsDefinedError(t *testing.T) {
	p := prog.New("T-selffork", "test")
	p.AddMethod("m", prog.Go(prog.ForkTaskRun, "m", "o", ""))
	p.AddTest("t", prog.Do("m", "o"))
	_, err := Analyze(p, DefaultConfig())
	if !errors.Is(err, ErrThreadBudget) {
		t.Fatalf("err = %v, want ErrThreadBudget", err)
	}
}

// TestCyclicJoinIsDefinedError: a continuation that awaits a handle bound
// to itself cannot occur under execution, but a malformed program can
// write it; the walker must report, not loop.
func TestCyclicJoinIsDefinedError(t *testing.T) {
	p := prog.New("T-cyc", "test")
	p.AddMethod("m", prog.Await("h"))
	p.AddTest("t", prog.Go(prog.ForkTaskRun, "m", "o", "h"), prog.JoinT("h"))
	_, err := Analyze(p, DefaultConfig())
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("err = %v, want cyclic join error", err)
	}
}

// TestProgramHashSensitivity: hashes are stable across rebuilds of the
// same program and change when the structure changes.
func TestProgramHashSensitivity(t *testing.T) {
	h1, err := ProgramHash(conflictProgram(false))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ProgramHash(conflictProgram(false))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("identical programs hash differently: %s vs %s", h1, h2)
	}
	h3, err := ProgramHash(conflictProgram(true)) // hidden list differs
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h3 {
		t.Fatal("hiding a method did not change the program hash")
	}
	hashes := map[string]string{h1: "base"}
	for _, p := range apps.All() {
		h, err := ProgramHash(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if prev, dup := hashes[h]; dup {
			t.Errorf("%s collides with %s", p.Name, prev)
		}
		hashes[h] = p.Name
	}
}

// TestLoopUnrollBounds: occurrence statistics must reflect the unroll
// bound, not the dynamic trip count — a 1000-iteration lock loop
// contributes LoopUnroll occurrences.
func TestLoopUnrollBounds(t *testing.T) {
	p := prog.New("T-loop", "test")
	p.AddMethod("writer", prog.Rep(1000, prog.Lock("L"), prog.Wr("C::f", "o", 1), prog.Unlock("L")))
	p.AddMethod("reader", prog.Rd("C::f", "o"))
	p.AddTest("t", prog.Go(prog.ForkTaskRun, "writer", "o", "h"), prog.Rd("C::f", "o"), prog.JoinT("h"))
	cfg := DefaultConfig()
	cfg.LoopUnroll = 2
	an, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 unrolled iterations × (begin+end per lock op) on the writer thread:
	// the walk is bounded even though the program says 1000.
	if an.Ops > 40 {
		t.Fatalf("ops = %d, loop unrolling is not bounded", an.Ops)
	}
	if an.Windows == 0 {
		t.Fatal("no windows from unrolled loop conflict")
	}
}

// genProgram decodes a byte stream into a small program: a statement-type
// opcode stream over four mutually callable methods, closed under the
// walker's full statement vocabulary (including recursion and dangling
// handles). Every generated program must either analyze cleanly or fail
// with a defined error — never panic, never hang.
func genProgram(data []byte) *prog.Program {
	p := prog.New("Fuzz", "fuzz")
	methods := []string{"m0", "m1", "m2", "m3"}
	fields := []string{"C::a", "C::b"}
	locks := []string{"L1", "L2"}
	bodies := make([][]prog.Stmt, len(methods))
	mi := 0
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i], int(data[i+1])
		body := &bodies[mi%len(methods)]
		f := fields[arg%len(fields)]
		l := locks[arg%len(locks)]
		m := methods[arg%len(methods)]
		h := fmt.Sprintf("h%d", arg%3)
		switch op % 20 {
		case 0:
			*body = append(*body, prog.Rd(f, "o"))
		case 1:
			*body = append(*body, prog.Wr(f, "o", int64(arg)))
		case 2:
			*body = append(*body, prog.Do(m, "o"))
		case 3:
			*body = append(*body, prog.Rep(arg%5, prog.Wr(f, "o", 1)))
		case 4:
			*body = append(*body, prog.Lock(l))
		case 5:
			*body = append(*body, prog.Unlock(l))
		case 6:
			*body = append(*body, prog.Go(prog.ForkTaskRun, m, "o", h))
		case 7:
			*body = append(*body, prog.JoinT(h))
		case 8:
			*body = append(*body, prog.Then(h, m, "o", h)) // self-referential handle
		case 9:
			*body = append(*body, prog.HGo(m, "o", h))
		case 10:
			*body = append(*body, prog.Await(h))
		case 11:
			*body = append(*body, prog.Set("s"), prog.Wait("s"))
		case 12:
			*body = append(*body, prog.PostQ("q"), prog.RecvQ("q", m, "o"))
		case 13:
			*body = append(*body, prog.ListAdd("o"), prog.ListRead("o"))
		case 14:
			*body = append(*body, prog.RdLock(l), prog.Upgrade(l), prog.Downgrade(l), prog.RdUnlock(l))
		case 15:
			*body = append(*body, prog.HLock(l), prog.HUnlock(l))
		case 16:
			*body = append(*body, prog.StaticInit("C", m))
		case 17:
			*body = append(*body, prog.GC("o", m, 10))
		case 18:
			*body = append(*body, prog.Spin(f, "o", 1, 5))
		case 19:
			mi++ // switch target method
		}
	}
	for i, name := range methods {
		p.AddMethod(name, bodies[i]...)
	}
	p.AddTest("t", prog.Go(prog.ForkTaskRun, "m0", "o", "root"), prog.Do("m1", "o"), prog.JoinT("root"))
	return p
}

// FuzzWalk drives the walker over generated programs. Seeds cover every
// opcode plus streams derived from all 8 benchmark apps (their program
// hashes — arbitrary but reproducible high-entropy bytes whose decoded
// statement mix differs per app). Properties: no panics, defined errors
// only, and determinism whenever analysis succeeds.
func FuzzWalk(f *testing.F) {
	f.Add([]byte{})
	all := make([]byte, 40)
	for i := range all {
		all[i] = byte(i)
	}
	f.Add(all)
	f.Add([]byte{2, 0, 2, 0, 2, 0}) // mutual recursion pressure
	f.Add([]byte{8, 0, 8, 1, 10, 0})
	for _, p := range apps.All() {
		h, err := ProgramHash(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add([]byte(h))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		cfg := DefaultConfig()
		cfg.Window = window.DefaultConfig()
		an, err := Analyze(genProgram(data), cfg)
		if err != nil {
			if errors.Is(err, ErrCallDepth) || errors.Is(err, ErrUnknownStmt) || errors.Is(err, ErrThreadBudget) ||
				strings.Contains(err.Error(), "cyclic") || strings.Contains(err.Error(), "unknown method") {
				return
			}
			t.Fatalf("undefined error class: %v", err)
		}
		an2, err := Analyze(genProgram(data), cfg)
		if err != nil {
			t.Fatalf("second analysis failed where first succeeded: %v", err)
		}
		if fingerprint(an) != fingerprint(an2) {
			t.Fatal("analysis not deterministic")
		}
	})
}
