// Package stats provides the small set of descriptive statistics SherLock's
// hypotheses need: mean, standard deviation, coefficient of variation, and
// empirical percentiles. The Acquisition-Time-Mostly-Varies hypothesis
// (paper Section 2, Eq. 5) ranks every method by the percentile of the
// coefficient of variation of its duration samples.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when fewer
// than two samples are available (a single observation carries no variation
// information).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CV returns the coefficient of variation (stddev / mean) of xs. A zero or
// negative mean yields 0: durations are non-negative, so a zero mean means
// every sample is zero and there is no variation to speak of.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m <= 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Percentile returns the fraction of values in population that are strictly
// less than x, in [0, 1]. An empty population yields 0. This is the
// "percentile(CV(duration(m)))" ranking of Eq. 5: a method whose duration
// varies more than most others gets a value near 1 and hence a small penalty
// for being inferred as an acquire.
func Percentile(x float64, population []float64) float64 {
	if len(population) == 0 {
		return 0
	}
	below := 0
	for _, p := range population {
		if p < x {
			below++
		}
	}
	return float64(below) / float64(len(population))
}

// Percentiles computes, for every value in xs, its percentile within xs
// itself. Equal values receive equal percentiles. The result preserves input
// order.
func Percentiles(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, x := range xs {
		// Index of first element >= x == count of elements < x.
		below := sort.SearchFloat64s(sorted, x)
		out[i] = float64(below) / float64(len(xs))
	}
	return out
}

// Welford accumulates a running mean and variance without storing samples.
// SherLock's Observer uses one per method to track duration statistics
// across runs without unbounded memory.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples folded in so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// CV returns the running coefficient of variation (see CV).
func (w *Welford) CV() float64 {
	if w.mean <= 0 {
		return 0
	}
	return w.StdDev() / w.mean
}

// Moments accumulates exact integer moments (count, sum, sum of squares)
// of integer-valued samples. Unlike Welford, whose floating-point state
// depends on the order samples arrive in, integer moments are exactly
// commutative and associative: folding the same multiset of samples in any
// order — or merging partial accumulators in any grouping — produces the
// identical bits. The window accumulator uses one per method for duration
// statistics, which is what lets incremental checkpoint folding add only
// the new traces' samples instead of replaying the whole corpus.
//
// Samples are expected to be integer-valued (virtual-nanosecond durations
// are); fractional parts are truncated on Add. Derived statistics mirror
// Welford's conventions bit-for-bit where they overlap: population
// standard deviation, 0 for fewer than two samples, CV 0 for a
// non-positive mean.
type Moments struct {
	Count int64 `json:"n"`
	Sum   int64 `json:"sum"`
	SumSq int64 `json:"sumsq"`
}

// Add folds one integer-valued sample into the accumulator.
func (m *Moments) Add(x float64) {
	v := int64(x)
	m.Count++
	m.Sum += v
	m.SumSq += v * v
}

// N returns the number of samples folded in so far.
func (m *Moments) N() int { return int(m.Count) }

// Mean returns the mean, or 0 for an empty accumulator.
func (m *Moments) Mean() float64 {
	if m.Count == 0 {
		return 0
	}
	return float64(m.Sum) / float64(m.Count)
}

// StdDev returns the population standard deviation, or 0 when fewer than
// two samples are available.
func (m *Moments) StdDev() float64 {
	if m.Count < 2 {
		return 0
	}
	mean := m.Mean()
	v := float64(m.SumSq)/float64(m.Count) - mean*mean
	if v < 0 {
		v = 0 // guard the tiny negative residue of float cancellation
	}
	return math.Sqrt(v)
}

// CV returns the coefficient of variation (see CV).
func (m *Moments) CV() float64 {
	if mean := m.Mean(); mean > 0 {
		return m.StdDev() / mean
	}
	return 0
}

// Merge folds another accumulator into m. Exact: merging is the same as
// having Added every sample directly, in any order.
func (m *Moments) Merge(o *Moments) {
	m.Count += o.Count
	m.Sum += o.Sum
	m.SumSq += o.SumSq
}

// Merge folds another accumulator into w (parallel Welford combination).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}
