package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev of single sample = %v, want 0", got)
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{0, 0, 0}); got != 0 {
		t.Errorf("CV of zeros = %v, want 0", got)
	}
	// Constant positive samples: CV = 0.
	if got := CV([]float64{3, 3, 3}); !almostEq(got, 0) {
		t.Errorf("CV of constant = %v, want 0", got)
	}
	got := CV([]float64{2, 4, 4, 4, 5, 5, 7, 9}) // stddev 2, mean 5
	if !almostEq(got, 0.4) {
		t.Errorf("CV = %v, want 0.4", got)
	}
}

func TestPercentile(t *testing.T) {
	pop := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0},
		{3, 0.4},
		{5.5, 1},
	}
	for _, c := range cases {
		if got := Percentile(c.x, pop); !almostEq(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := Percentile(1, nil); got != 0 {
		t.Errorf("Percentile over empty population = %v, want 0", got)
	}
}

func TestPercentilesOrderAndTies(t *testing.T) {
	xs := []float64{10, 20, 20, 30}
	got := Percentiles(xs)
	want := []float64{0, 0.25, 0.25, 0.75}
	for i := range want {
		if !almostEq(got[i], want[i]) {
			t.Fatalf("Percentiles(%v) = %v, want %v", xs, got, want)
		}
	}
	if len(Percentiles(nil)) != 0 {
		t.Error("Percentiles(nil) should be empty")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100)
	var w Welford
	for i := range xs {
		xs[i] = rng.Float64() * 100
		w.Add(xs[i])
	}
	if !almostEq(w.Mean(), Mean(xs)) {
		t.Errorf("Welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.StdDev()-StdDev(xs)) > 1e-6 {
		t.Errorf("Welford stddev %v != batch %v", w.StdDev(), StdDev(xs))
	}
	if math.Abs(w.CV()-CV(xs)) > 1e-6 {
		t.Errorf("Welford CV %v != batch %v", w.CV(), CV(xs))
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var all, a, b Welford
	var xs []float64
	for i := 0; i < 37; i++ {
		x := rng.NormFloat64()*3 + 10
		xs = append(xs, x)
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.StdDev()-all.StdDev()) > 1e-9 {
		t.Errorf("merged (%v,%v) != sequential (%v,%v)", a.Mean(), a.StdDev(), all.Mean(), all.StdDev())
	}
	_ = xs
	// Merging into an empty accumulator copies.
	var empty Welford
	empty.Merge(&all)
	if empty.N() != all.N() || !almostEq(empty.Mean(), all.Mean()) {
		t.Error("merge into empty accumulator should copy")
	}
	// Merging an empty accumulator is a no-op.
	before := all
	var e2 Welford
	all.Merge(&e2)
	if all != before {
		t.Error("merging empty accumulator should be a no-op")
	}
}

// Property: percentiles are in [0,1], monotone with value, and equal values
// get equal percentiles.
func TestPercentilesProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r % 100) // force ties
		}
		ps := Percentiles(xs)
		for i := range xs {
			if ps[i] < 0 || ps[i] > 1 {
				return false
			}
			for j := range xs {
				if xs[i] == xs[j] && ps[i] != ps[j] {
					return false
				}
				if xs[i] < xs[j] && ps[i] > ps[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Welford matches batch statistics for random inputs.
func TestWelfordProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, r := range raw {
			xs[i] = float64(r)
			w.Add(xs[i])
		}
		return math.Abs(w.Mean()-Mean(xs)) < 1e-6 && math.Abs(w.StdDev()-StdDev(xs)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
