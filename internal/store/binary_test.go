package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"sherlock/internal/apps"
	"sherlock/internal/sched"
	"sherlock/internal/trace"
)

// appTraces captures one trace per test of every benchmark application —
// the corpus all cross-format tests run over.
func appTraces(t testing.TB) []*trace.Trace {
	t.Helper()
	var out []*trace.Trace
	for _, app := range apps.All() {
		for i, test := range app.Tests {
			run, err := sched.Run(app, test, sched.Options{Seed: int64(i) + 1})
			if err != nil {
				t.Fatalf("%s test %d: %v", app.Name, i, err)
			}
			out = append(out, run.Trace)
		}
	}
	if len(out) == 0 {
		t.Fatal("no app traces")
	}
	return out
}

func sampleTrace() *trace.Trace {
	return &trace.Trace{
		App: "App-4", Test: "Tests::ByteBuffer", Seed: 42,
		Events: []trace.Event{
			{Time: 10, Thread: 0, Kind: trace.KindBegin, Name: "C::m", Obj: 3},
			{Time: 20, Thread: 1, Kind: trace.KindWrite, Name: "C::f", Addr: 0x1000, Site: 7, Acc: trace.AccWrite},
			{Time: 30, Thread: 1, Kind: trace.KindRead, Name: "C::f", Addr: 0x1000, Site: 8, Acc: trace.AccRead},
			{Time: 40, Thread: 0, Kind: trace.KindEnd, Name: "Lib::Api", Lib: true, Addr: 9, Child: 2,
				Extra: []uint64{4, 5}},
			{Time: 50, Thread: 2, Kind: trace.KindBegin, Name: "List::Add", Lib: true, Unsafe: true,
				Addr: 11, Acc: trace.AccWrite},
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	data, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != tr.App || got.Test != tr.Test || got.Seed != tr.Seed {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Errorf("events mismatch:\n got %+v\nwant %+v", got.Events, tr.Events)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	tr := &trace.Trace{App: "a", Test: "t", Seed: -7}
	data, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "a" || got.Test != "t" || got.Seed != -7 || len(got.Events) != 0 {
		t.Errorf("bad empty round trip: %+v", got)
	}
}

// Multi-block streams: a block size smaller than the trace forces delta
// resets and multiple CRC frames.
func TestBinaryMultiBlock(t *testing.T) {
	tr := &trace.Trace{App: "a", Test: "t"}
	rng := rand.New(rand.NewSource(7))
	tm := int64(0)
	for i := 0; i < 1000; i++ {
		tm += int64(rng.Intn(50))
		tr.Events = append(tr.Events, trace.Event{
			Time: tm, Thread: rng.Intn(8), Kind: trace.Kind(rng.Intn(4)),
			Name: []string{"A::x", "B::y", "C::z"}[rng.Intn(3)],
			Addr: uint64(rng.Intn(1 << 20)), Site: rng.Intn(100),
		})
	}
	var buf bytes.Buffer
	wr, err := NewWriter(&buf, Meta{App: tr.App, Test: tr.Test, Seed: tr.Seed}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		if err := wr.Add(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatal("multi-block round trip mismatch")
	}
}

// The streaming reader yields events one at a time with the same content
// as the whole-trace decode.
func TestStreamingReader(t *testing.T) {
	tr := sampleTrace()
	data, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m := rd.Meta(); m.App != tr.App || m.Test != tr.Test || m.Seed != tr.Seed {
		t.Errorf("meta mismatch: %+v", m)
	}
	for i := range tr.Events {
		e, err := rd.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !reflect.DeepEqual(e, tr.Events[i]) {
			t.Fatalf("event %d mismatch: %+v != %+v", i, e, tr.Events[i])
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
	if rd.Count() != len(tr.Events) {
		t.Fatalf("Count = %d, want %d", rd.Count(), len(tr.Events))
	}
}

// Satellite: round-trip property over every benchmark-app trace —
// binary → JSON → binary re-encodes byte-identically, and every hop
// preserves the event slice exactly.
func TestCrossFormatRoundTripAllApps(t *testing.T) {
	for _, tr := range appTraces(t) {
		bin1, err := EncodeTrace(tr)
		if err != nil {
			t.Fatalf("%s/%s: encode: %v", tr.App, tr.Test, err)
		}
		fromBin, err := DecodeTrace(bin1)
		if err != nil {
			t.Fatalf("%s/%s: decode: %v", tr.App, tr.Test, err)
		}
		if !reflect.DeepEqual(fromBin.Events, tr.Events) {
			t.Fatalf("%s/%s: binary round trip changed events", tr.App, tr.Test)
		}

		var jsonBuf bytes.Buffer
		if err := fromBin.Write(&jsonBuf); err != nil {
			t.Fatalf("%s/%s: JSON write: %v", tr.App, tr.Test, err)
		}
		fromJSON, err := trace.Read(&jsonBuf)
		if err != nil {
			t.Fatalf("%s/%s: JSON read: %v", tr.App, tr.Test, err)
		}
		if !reflect.DeepEqual(fromJSON.Events, tr.Events) {
			t.Fatalf("%s/%s: JSON hop changed events", tr.App, tr.Test)
		}

		bin2, err := EncodeTrace(fromJSON)
		if err != nil {
			t.Fatalf("%s/%s: re-encode: %v", tr.App, tr.Test, err)
		}
		if !bytes.Equal(bin1, bin2) {
			t.Fatalf("%s/%s: binary→JSON→binary is not byte-identical (%d vs %d bytes)",
				tr.App, tr.Test, len(bin1), len(bin2))
		}
	}
}

// The binary format exists to be small: assert the >=4x size win over
// JSON lines on the full 8-app corpus (acceptance criterion; the exact
// ratio is tracked in BENCH_store.json).
func TestBinarySmallerThanJSON(t *testing.T) {
	var jsonBytes, binBytes int
	for _, tr := range appTraces(t) {
		var jb bytes.Buffer
		if err := tr.Write(&jb); err != nil {
			t.Fatal(err)
		}
		bin, err := EncodeTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		jsonBytes += jb.Len()
		binBytes += len(bin)
	}
	ratio := float64(jsonBytes) / float64(binBytes)
	t.Logf("8-app corpus: JSON %d bytes, binary %d bytes, ratio %.2fx", jsonBytes, binBytes, ratio)
	if ratio < 4 {
		t.Errorf("binary format is only %.2fx smaller than JSON (want >=4x)", ratio)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, err := EncodeTrace(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, data []byte) {
		t.Helper()
		if _, err := DecodeTrace(data); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	check("empty", nil)
	check("short magic", valid[:3])
	check("bad magic", append([]byte("XXXX"), valid[4:]...))
	check("bad version", append([]byte(Magic+"\x09"), valid[5:]...))
	check("truncated header", valid[:6])
	check("truncated mid-block", valid[:len(valid)-8])
	check("missing trailer", valid[:len(valid)-2])
	check("trailing garbage", append(append([]byte{}, valid...), 0xFF))

	// Flip one payload byte: the block CRC must catch it.
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)-10] ^= 0x40
	check("corrupt payload byte", corrupt)

	// A trailer that disagrees with the decoded event count.
	tr := sampleTrace()
	var buf bytes.Buffer
	wr, err := NewWriter(&buf, Meta{App: tr.App}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		if err := wr.Add(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	lied := buf.Bytes()
	// Close wrote trailer {0x00, count}; overwrite count with count+1.
	lied = lied[:len(lied)-1]
	lied = binary.AppendUvarint(lied, uint64(len(tr.Events)+1))
	check("trailer count mismatch", lied)
}

func TestEncodeRejectsInvalidEvents(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{{Kind: trace.Kind(9)}}}
	if _, err := EncodeTrace(tr); err == nil {
		t.Error("invalid kind should fail to encode")
	}
	tr = &trace.Trace{Events: []trace.Event{{Acc: trace.Acc(7)}}}
	if _, err := EncodeTrace(tr); err == nil {
		t.Error("invalid access class should fail to encode")
	}
}

// Extreme field values survive the varint/zigzag/delta paths.
func TestBinaryExtremes(t *testing.T) {
	tr := &trace.Trace{App: strings.Repeat("α", 100), Test: "", Seed: -1 << 62}
	tr.Events = []trace.Event{
		{Time: -1 << 60, Thread: -3, Name: "", Addr: ^uint64(0), Obj: ^uint64(0),
			Site: -1, Child: -9, Extra: []uint64{0, ^uint64(0)}, Acc: trace.AccWrite},
		{Time: 1 << 60, Thread: 1 << 30, Name: "n", Addr: 0, Site: 1 << 30},
		{Time: 0, Thread: 0, Name: "n", Addr: 1},
	}
	data, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != tr.App || got.Seed != tr.Seed {
		t.Errorf("metadata mismatch")
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Errorf("events mismatch:\n got %+v\nwant %+v", got.Events, tr.Events)
	}
}

// Randomized round-trip property, mirroring the JSON codec's test.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		tr := &trace.Trace{App: "a", Test: "t", Seed: int64(trial)}
		n := rng.Intn(300)
		tm := int64(0)
		for i := 0; i < n; i++ {
			tm += int64(rng.Intn(100)) - 20
			kind := trace.Kind(rng.Intn(4))
			acc := trace.AccNone
			if kind == trace.KindRead {
				acc = trace.AccRead
			} else if kind == trace.KindWrite {
				acc = trace.AccWrite
			}
			e := trace.Event{
				Time: tm, Thread: rng.Intn(4), Kind: kind,
				Name: []string{"C::x", "C::y", "D::z", ""}[rng.Intn(4)],
				Addr: uint64(rng.Intn(100)), Site: rng.Intn(50),
				Lib: rng.Intn(2) == 0, Acc: acc,
			}
			if rng.Intn(5) == 0 {
				e.Extra = []uint64{uint64(rng.Intn(9)), uint64(rng.Intn(9))}
			}
			tr.Events = append(tr.Events, e)
		}
		data, err := EncodeTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeTrace(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got.Events) != len(tr.Events) {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for i := range tr.Events {
			if !reflect.DeepEqual(got.Events[i], tr.Events[i]) {
				t.Fatalf("trial %d event %d: %+v != %+v", trial, i, got.Events[i], tr.Events[i])
			}
		}
	}
}

// A corpus source streams the same events InferFromTraces would see
// in-memory (context plumbed through for cancellation between traces).
func TestSourceCancellation(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Ingest(sampleTrace()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = c.Source().Traces(ctx, func(*trace.Trace) error { return nil })
	if err == nil {
		t.Fatal("canceled context should abort iteration")
	}
}
