// Named checkpoint blobs. Unlike trace blobs, checkpoints are mutable
// state addressed by name (one per subscription stream, overwritten on
// every advance), so they live beside — not inside — the content-addressed
// blob tree:
//
//	<dir>/checkpoints/<name>   one opaque blob per name
//
// The store treats checkpoint bytes as opaque — encoding and versioning
// belong to internal/core's checkpoint codec — but writes them with the
// same atomic stage-then-rename discipline as trace blobs, so a crash
// never leaves a torn checkpoint: readers see the old state or the new
// one, nothing in between.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// checkpointName constrains names to a filesystem-safe alphabet.
var checkpointName = regexp.MustCompile(`^[A-Za-z0-9._-]{1,200}$`)

func (c *Corpus) checkpointPath(name string) string {
	return filepath.Join(c.dir, "checkpoints", name)
}

// SaveCheckpoint atomically writes (or replaces) the named checkpoint.
func (c *Corpus) SaveCheckpoint(name string, data []byte) error {
	if !checkpointName.MatchString(name) {
		return fmt.Errorf("store: bad checkpoint name %q", name)
	}
	dir := filepath.Join(c.dir, "checkpoints")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: save checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(c.dir, "tmp"), "ckpt-*")
	if err != nil {
		return fmt.Errorf("store: save checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: save checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: save checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, c.checkpointPath(name)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: save checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads the named checkpoint; the error satisfies
// os.IsNotExist checks when none was ever saved.
func (c *Corpus) LoadCheckpoint(name string) ([]byte, error) {
	if !checkpointName.MatchString(name) {
		return nil, fmt.Errorf("store: bad checkpoint name %q", name)
	}
	data, err := os.ReadFile(c.checkpointPath(name))
	if err != nil {
		return nil, err
	}
	return data, nil
}

// DeleteCheckpoint removes the named checkpoint; deleting a missing one is
// a no-op.
func (c *Corpus) DeleteCheckpoint(name string) error {
	if !checkpointName.MatchString(name) {
		return fmt.Errorf("store: bad checkpoint name %q", name)
	}
	err := os.Remove(c.checkpointPath(name))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Checkpoints lists the stored checkpoint names, sorted.
func (c *Corpus) Checkpoints() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(c.dir, "checkpoints"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: list checkpoints: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
