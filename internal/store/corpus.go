// Content-addressed trace corpus: a directory of canonical binary trace
// blobs keyed by the SHA-256 of their encoding, plus a manifest index.
//
// Layout:
//
//	<dir>/manifest.json        index of every entry (manifest.go)
//	<dir>/blobs/<kk>/<key>     one blob per unique trace, where <kk> is
//	                           the first two hex digits of the key
//	<dir>/tmp/                 staging area for atomic write-then-rename
//
// Ingestion is atomic and idempotent: the canonical encoding is staged
// under tmp/ on the same filesystem and renamed into place, so a crash
// never leaves a partial blob at a final path, and re-ingesting a trace
// that is already present (same content, hence same key) is a no-op dedup
// hit. Iteration order is deterministic (sorted by key). All methods are
// safe for concurrent use.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sherlock/internal/obs"
	"sherlock/internal/trace"
)

// Entry is one corpus trace's index record.
type Entry struct {
	Key    string `json:"key"`        // SHA-256 of the canonical encoding, hex
	App    string `json:"app"`        // trace metadata
	Test   string `json:"test"`       //
	Seed   int64  `json:"seed"`       //
	Events int    `json:"events"`     // event count
	Size   int64  `json:"size_bytes"` // encoded blob size
}

// Corpus is an open trace corpus rooted at a directory.
type Corpus struct {
	dir string

	mu       sync.Mutex
	entries  map[string]Entry
	tracer   *obs.Tracer
	onIngest []func(Entry)
}

// OnIngest registers a hook called after every Ingest that stores a new
// blob (dedup hits never fire it). Hooks run outside the corpus lock, on
// the ingesting goroutine, after the blob and manifest are durably in
// place — a hook that reads the corpus sees the new entry. The serving
// layer uses this to notify corpus-prefix subscriptions. Safe for
// concurrent use with ingestion; registration order is invocation order.
func (c *Corpus) OnIngest(fn func(Entry)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onIngest = append(c.onIngest, fn)
}

// SetTracer attaches an observability tracer: subsequent Ingest and Source
// decode operations record "ingest:<key>" / "decode:<key>" spans with
// codec timings and sizes. Span keys are content addresses, so the spans
// are deterministic for deterministic inputs. A nil tracer (the default)
// disables recording. Not safe to call concurrently with corpus
// operations; set it right after Open.
func (c *Corpus) SetTracer(t *obs.Tracer) { c.tracer = t }

// spanKey abbreviates a content address for span identity: 12 hex digits
// keep IDs readable while remaining collision-free at corpus scale.
func spanKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// Open opens (creating if needed) the corpus at dir. A missing or corrupt
// manifest is rebuilt by decoding every blob, so the blobs alone are the
// source of truth.
func Open(dir string) (*Corpus, error) {
	for _, d := range []string{dir, filepath.Join(dir, "blobs"), filepath.Join(dir, "tmp")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: open corpus: %w", err)
		}
	}
	c := &Corpus{dir: dir, entries: make(map[string]Entry)}
	entries, err := loadManifest(c.manifestPath())
	if err == nil {
		for _, e := range entries {
			c.entries[e.Key] = e
		}
		return c, nil
	}
	if err := c.rebuild(); err != nil {
		return nil, err
	}
	if len(c.entries) > 0 {
		if err := c.saveManifestLocked(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Dir returns the corpus root directory.
func (c *Corpus) Dir() string { return c.dir }

func (c *Corpus) manifestPath() string { return filepath.Join(c.dir, "manifest.json") }

// BlobPath returns the on-disk path of a key's blob (which may not exist).
func (c *Corpus) BlobPath(key string) string {
	prefix := "xx"
	if len(key) >= 2 {
		prefix = key[:2]
	}
	return filepath.Join(c.dir, "blobs", prefix, key)
}

// Key returns the content address of a trace: SHA-256 over its canonical
// binary encoding.
func Key(t *trace.Trace) (string, error) {
	data, err := EncodeTrace(t)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Ingest adds a trace to the corpus and returns its entry. added is false
// when the identical trace (same canonical bytes) was already present —
// the dedup path writes nothing.
func (c *Corpus) Ingest(t *trace.Trace) (Entry, bool, error) {
	data, err := EncodeTrace(t)
	if err != nil {
		return Entry{}, false, err
	}
	sum := sha256.Sum256(data)
	key := hex.EncodeToString(sum[:])
	entry := Entry{
		Key: key, App: t.App, Test: t.Test, Seed: t.Seed,
		Events: len(t.Events), Size: int64(len(data)),
	}
	span := c.tracer.Root("ingest", spanKey(key),
		obs.Str("app", t.App),
		obs.Str("test", t.Test),
		obs.Int("events", len(t.Events)),
		obs.Int("bytes", len(data)))
	added := false
	var hooks []func(Entry)
	defer func() {
		span.Annotate(obs.Bool("dedup", !added))
		span.End()
		// Runs after the deferred unlock below (defers are LIFO), so hooks
		// observe the corpus with the new entry visible and may call back
		// into it freely.
		if added {
			for _, fn := range hooks {
				fn(entry)
			}
		}
	}()

	c.mu.Lock()
	defer c.mu.Unlock()
	hooks = c.onIngest
	if prev, ok := c.entries[key]; ok {
		if _, err := os.Stat(c.BlobPath(key)); err == nil {
			return prev, false, nil
		}
		// Manifest entry without a blob (manual deletion): fall through
		// and rewrite it.
	}

	final := c.BlobPath(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return Entry{}, false, fmt.Errorf("store: ingest: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(c.dir, "tmp"), "ingest-*")
	if err != nil {
		return Entry{}, false, fmt.Errorf("store: ingest: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return Entry{}, false, fmt.Errorf("store: ingest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return Entry{}, false, fmt.Errorf("store: ingest: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return Entry{}, false, fmt.Errorf("store: ingest: %w", err)
	}

	c.entries[key] = entry
	if err := c.saveManifestLocked(); err != nil {
		return Entry{}, false, err
	}
	added = true
	return entry, true, nil
}

// Get decodes the trace stored at key.
func (c *Corpus) Get(key string) (*trace.Trace, error) {
	f, err := os.Open(c.BlobPath(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: no trace with key %s", key)
		}
		return nil, err
	}
	defer f.Close()
	t, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("store: blob %s: %w", key, err)
	}
	return t, nil
}

// Entry returns the index record for key.
func (c *Corpus) Entry(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e, ok
}

// Entries returns every index record, sorted by key — the corpus's
// deterministic iteration order.
func (c *Corpus) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Len returns the number of unique traces in the corpus.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the unique-trace count, the total stored blob bytes, and
// the total event count across the corpus.
func (c *Corpus) Stats() (traces int, bytes int64, events int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		bytes += e.Size
		events += int64(e.Events)
	}
	return len(c.entries), bytes, events
}

// VerifyReport is the machine-readable outcome of a full corpus
// integrity scan. Key lists are sorted; an all-empty report (Clean) means
// every manifest entry has a bit-exact blob and every blob is indexed.
// The serving layer exposes it at GET /v1/corpus/verify, and cluster
// anti-entropy uses Corrupt/Missing as its repair work-list: dropping a
// corrupt blob and re-pulling it from a replica heals bit rot.
type VerifyReport struct {
	// Checked counts the manifest entries scanned.
	Checked int `json:"checked"`
	// Corrupt lists keys whose blob exists but fails verification: the
	// bytes hash to a different key, fail to decode, or decode to
	// metadata that contradicts the manifest entry.
	Corrupt []string `json:"corrupt,omitempty"`
	// Missing lists manifest keys with no blob on disk.
	Missing []string `json:"missing,omitempty"`
	// Orphans lists blob files on disk that no manifest entry claims.
	Orphans []string `json:"orphans,omitempty"`
}

// Clean reports whether the scan found nothing wrong.
func (r *VerifyReport) Clean() bool {
	return len(r.Corrupt) == 0 && len(r.Missing) == 0 && len(r.Orphans) == 0
}

// Err summarizes a dirty report as an error, nil when the report is clean.
func (r *VerifyReport) Err() error {
	if r.Clean() {
		return nil
	}
	return fmt.Errorf("store: verify: %d corrupt, %d missing, %d orphan blobs (of %d entries)",
		len(r.Corrupt), len(r.Missing), len(r.Orphans), r.Checked)
}

// Verify scans the whole corpus: every manifest entry must have a blob
// whose bytes hash to its key (which also re-verifies every block CRC on
// the way in, via decode) and whose metadata matches the manifest, and
// every blob on disk must appear in the manifest. Unlike a fail-fast
// check it classifies every problem into the returned report; the error
// is reserved for I/O failures that prevent scanning at all.
func (c *Corpus) Verify() (*VerifyReport, error) {
	rep := &VerifyReport{}
	entries := c.Entries()
	rep.Checked = len(entries)
	for _, e := range entries {
		data, err := os.ReadFile(c.BlobPath(e.Key))
		if err != nil {
			if os.IsNotExist(err) {
				rep.Missing = append(rep.Missing, e.Key)
				continue
			}
			return nil, fmt.Errorf("store: verify %s: %w", e.Key, err)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != e.Key {
			rep.Corrupt = append(rep.Corrupt, e.Key)
			continue
		}
		t, err := DecodeTrace(data)
		if err != nil {
			rep.Corrupt = append(rep.Corrupt, e.Key)
			continue
		}
		if t.App != e.App || t.Test != e.Test || t.Seed != e.Seed || len(t.Events) != e.Events ||
			int64(len(data)) != e.Size {
			rep.Corrupt = append(rep.Corrupt, e.Key)
		}
	}
	onDisk, err := c.scanBlobs()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	for _, key := range onDisk {
		if _, ok := c.entries[key]; !ok {
			rep.Orphans = append(rep.Orphans, key)
		}
	}
	c.mu.Unlock()
	return rep, nil
}

// HasBlob reports whether key's blob file is present on disk (a cheap
// stat — no hashing; Verify does the expensive bit-exact check).
func (c *Corpus) HasBlob(key string) bool {
	_, err := os.Stat(c.BlobPath(key))
	return err == nil
}

// ReadBlob returns the raw canonical encoding stored at key, exactly as
// written — callers replicating blobs between corpora send these bytes
// and re-verify the SHA-256 on receipt.
func (c *Corpus) ReadBlob(key string) ([]byte, error) {
	data, err := os.ReadFile(c.BlobPath(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: no blob with key %s", key)
		}
		return nil, err
	}
	return data, nil
}

// DropBlob removes key's blob file while keeping its manifest entry — a
// repair primitive: a corrupt blob is dropped and then re-ingested (or
// re-pulled from a cluster replica), and Ingest rewrites the file when
// the manifest entry survives without one. Missing blobs are a no-op.
func (c *Corpus) DropBlob(key string) error {
	if err := os.Remove(c.BlobPath(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: drop blob %s: %w", key, err)
	}
	return nil
}

// rebuild reconstructs the index from the blobs directory.
func (c *Corpus) rebuild() error {
	keys, err := c.scanBlobs()
	if err != nil {
		return err
	}
	for _, key := range keys {
		data, err := os.ReadFile(c.BlobPath(key))
		if err != nil {
			return fmt.Errorf("store: rebuild: %w", err)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != key {
			return fmt.Errorf("store: rebuild: blob named %s hashes to %s", key, got)
		}
		t, err := DecodeTrace(data)
		if err != nil {
			return fmt.Errorf("store: rebuild: blob %s: %w", key, err)
		}
		c.entries[key] = Entry{
			Key: key, App: t.App, Test: t.Test, Seed: t.Seed,
			Events: len(t.Events), Size: int64(len(data)),
		}
	}
	return nil
}

// scanBlobs lists every blob key on disk, sorted.
func (c *Corpus) scanBlobs() ([]string, error) {
	var keys []string
	root := filepath.Join(c.dir, "blobs")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		keys = append(keys, filepath.Base(path))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scan blobs: %w", err)
	}
	sort.Strings(keys)
	return keys, nil
}
