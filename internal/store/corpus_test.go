package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"sherlock/internal/trace"
)

func openTestCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCorpusIngestAndGet(t *testing.T) {
	c := openTestCorpus(t)
	tr := sampleTrace()
	e, added, err := c.Ingest(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Fatal("first ingest must report added")
	}
	if e.App != tr.App || e.Test != tr.Test || e.Seed != tr.Seed || e.Events != len(tr.Events) {
		t.Errorf("bad entry: %+v", e)
	}
	wantKey, err := Key(tr)
	if err != nil {
		t.Fatal(err)
	}
	if e.Key != wantKey {
		t.Errorf("entry key %s != Key() %s", e.Key, wantKey)
	}
	got, err := c.Get(e.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Error("stored trace does not round-trip")
	}
	if _, err := c.Get("feedfacedeadbeef"); err == nil {
		t.Error("missing key should error")
	}
}

// Acceptance: uploading the same trace twice dedups to one blob.
func TestCorpusDedup(t *testing.T) {
	c := openTestCorpus(t)
	tr := sampleTrace()
	e1, added1, err := c.Ingest(tr)
	if err != nil {
		t.Fatal(err)
	}
	e2, added2, err := c.Ingest(sampleTrace()) // equal content, distinct value
	if err != nil {
		t.Fatal(err)
	}
	if !added1 || added2 {
		t.Fatalf("dedup broken: added1=%v added2=%v", added1, added2)
	}
	if e1.Key != e2.Key {
		t.Fatalf("same trace hashed to %s and %s", e1.Key, e2.Key)
	}
	if c.Len() != 1 {
		t.Fatalf("corpus has %d entries, want 1", c.Len())
	}
	// Exactly one blob file on disk.
	keys, err := c.scanBlobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != e1.Key {
		t.Fatalf("blobs on disk: %v", keys)
	}
	// A different trace is a different blob.
	other := sampleTrace()
	other.Seed++
	e3, added3, err := c.Ingest(other)
	if err != nil {
		t.Fatal(err)
	}
	if !added3 || e3.Key == e1.Key {
		t.Fatalf("distinct trace must get a distinct blob (added=%v)", added3)
	}
}

func TestCorpusDeterministicIteration(t *testing.T) {
	c := openTestCorpus(t)
	var want []string
	for i := 0; i < 8; i++ {
		tr := sampleTrace()
		tr.Seed = int64(i)
		e, _, err := c.Ingest(tr)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, e.Key)
	}
	sort.Strings(want)
	for trial := 0; trial < 3; trial++ {
		var got []string
		for _, e := range c.Entries() {
			got = append(got, e.Key)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration order not deterministic/sorted: %v", got)
		}
	}
	if got := c.Source().Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("source order %v != sorted keys %v", got, want)
	}
}

// Open rebuilds a lost manifest from the blobs alone.
func TestCorpusManifestRebuild(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := c.Ingest(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Entry(e.Key)
	if !ok || !reflect.DeepEqual(got, e) {
		t.Fatalf("rebuilt entry %+v != original %+v", got, e)
	}
	// The rebuild also rewrote the manifest.
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal("rebuild did not persist the manifest")
	}
	// A corrupt manifest is likewise rebuilt, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Entry(e.Key); !ok {
		t.Fatal("corrupt manifest not rebuilt")
	}
}

func TestCorpusVerify(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := c.Ingest(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Checked != 1 || rep.Err() != nil {
		t.Fatalf("fresh corpus must verify clean, got %+v", rep)
	}
	// Corrupt one byte of the blob: Verify must classify it as corrupt.
	path := c.BlobPath(e.Key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0] != e.Key || rep.Err() == nil {
		t.Fatalf("corrupt blob must be reported, got %+v", rep)
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 {
		t.Fatalf("truncated blob must be reported corrupt, got %+v", rep)
	}
	// A deleted blob is reported missing (not an I/O error) — and
	// HasBlob flips, which is what anti-entropy keys its re-pull on.
	if !c.HasBlob(e.Key) {
		t.Fatal("HasBlob must see the truncated blob")
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if c.HasBlob(e.Key) {
		t.Fatal("HasBlob must report a removed blob as absent")
	}
	rep, err = c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != e.Key || len(rep.Corrupt) != 0 {
		t.Fatalf("removed blob must be reported missing, got %+v", rep)
	}
	c2 := openTestCorpus(t)
	e2, _, err := c2.Ingest(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(c2.dir, "blobs", "or", "orphan")
	if err := os.MkdirAll(filepath.Dir(orphan), 0o755); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(c2.BlobPath(e2.Key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphan, src, 0o644); err != nil {
		t.Fatal(err)
	}
	rep2, err := c2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Orphans) != 1 || rep2.Orphans[0] != "orphan" {
		t.Fatalf("orphan blob must be reported, got %+v", rep2)
	}
	if !strings.Contains(rep2.Err().Error(), "orphan") {
		t.Fatalf("report error must mention orphans: %v", rep2.Err())
	}

	// DropBlob + re-Ingest is the repair cycle: the manifest entry
	// survives without its blob, and ingesting the same trace rewrites it.
	if err := c2.DropBlob(e2.Key); err != nil {
		t.Fatal(err)
	}
	if c2.HasBlob(e2.Key) {
		t.Fatal("DropBlob left the blob in place")
	}
	if _, added, err := c2.Ingest(sampleTrace()); err != nil || !added {
		t.Fatalf("re-ingest after DropBlob: added=%v err=%v", added, err)
	}
	blob, err := c2.ReadBlob(e2.Key)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) != e2.Size {
		t.Fatalf("rewritten blob is %d bytes, want %d", len(blob), e2.Size)
	}
}

// Atomic ingest: the staging area never leaks temp files, and concurrent
// ingests of identical and distinct traces (under -race) leave the corpus
// consistent.
func TestCorpusConcurrentIngest(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			same := sampleTrace() // identical across workers → one blob
			if _, _, err := c.Ingest(same); err != nil {
				errs <- err
			}
			own := sampleTrace() // distinct per worker → one blob each
			own.Seed = 1000 + int64(w)
			if _, _, err := c.Ingest(own); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Len() != workers+1 {
		t.Fatalf("corpus has %d entries, want %d", c.Len(), workers+1)
	}
	if rep, err := c.Verify(); err != nil || !rep.Clean() {
		t.Fatalf("verify after concurrent ingest: %v %+v", err, rep)
	}
	// tmp/ staging area is empty after all renames.
	left, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("staging area leaked %d files", len(left))
	}
	// A reopened corpus sees the same index.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c2.Entries(), c.Entries()) {
		t.Fatal("reopened corpus index differs")
	}
}

// Decode sniffs the serialization format.
func TestDecodeSniffing(t *testing.T) {
	tr := sampleTrace()
	bin, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	var jsonBuf bytes.Buffer
	if err := tr.Write(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeBytes(bin)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := DecodeBytes(jsonBuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromBin.Events, fromJSON.Events) {
		t.Fatal("sniffed decodes disagree")
	}
	if _, err := DecodeBytes([]byte("neither format")); err == nil {
		t.Fatal("junk should not decode")
	}
}

// Corpus.Source plugs into the offline solve via the structural
// TraceSource interface; here we just assert the stream content.
func TestCorpusSourceStreams(t *testing.T) {
	c := openTestCorpus(t)
	var want []string
	for i := 0; i < 3; i++ {
		tr := sampleTrace()
		tr.Seed = int64(i)
		e, _, err := c.Ingest(tr)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, e.Key)
	}
	var got []string
	err := c.Source(want[2], want[0]).Traces(context.Background(), func(tr *trace.Trace) error {
		k, err := Key(tr)
		if err != nil {
			return err
		}
		got = append(got, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{want[2], want[0]}) {
		t.Fatalf("explicit key order not honored: %v", got)
	}
	if err := c.Source("no-such-key").Traces(context.Background(), func(*trace.Trace) error { return nil }); err == nil {
		t.Fatal("missing key must surface as an error")
	}
}
