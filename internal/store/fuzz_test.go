package store

import (
	"bytes"
	"reflect"
	"testing"

	"sherlock/internal/apps"
	"sherlock/internal/sched"
)

// FuzzBinaryDecode hammers the binary decoder with corrupted streams:
// whatever the input — bad magic, truncated headers, forged varints,
// wrong CRCs, lying trailers — DecodeTrace must return an error or a
// trace, never panic, and anything it accepts must re-encode canonically.
// Seeds are the encodings of one captured trace per benchmark app plus
// targeted corruptions of a known-good stream.
func FuzzBinaryDecode(f *testing.F) {
	for _, app := range apps.All() {
		run, err := sched.Run(app, app.Tests[0], sched.Options{Seed: 1})
		if err != nil {
			f.Fatal(err)
		}
		data, err := EncodeTrace(run.Trace)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	good, err := EncodeTrace(sampleTrace())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(good[:5])
	f.Add(good[:len(good)/2])
	f.Add(append([]byte("XXXX\x01"), good[5:]...))
	f.Add(append(append([]byte{}, good...), 0x00))
	crcFlip := append([]byte{}, good...)
	crcFlip[len(crcFlip)-6] ^= 0x80
	f.Add(crcFlip)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(data)
		if err != nil {
			return
		}
		// Accepted input: the decoded trace must re-encode and round-trip.
		enc, err := EncodeTrace(tr)
		if err != nil {
			t.Fatalf("decoded trace does not re-encode: %v", err)
		}
		tr2, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		if !reflect.DeepEqual(tr.Events, tr2.Events) {
			t.Fatal("re-encode round trip changed events")
		}
		// Canonical encodings are a fixpoint: re-encoding what the second
		// decode produced changes nothing (byte-identity of the *first*
		// re-encode is deliberately not asserted — a valid stream may use
		// a non-canonical block size or flate framing).
		enc2, err := EncodeTrace(tr2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding is not a fixpoint")
		}
	})
}
