// Manifest persistence: the corpus index as a JSON document, rewritten
// atomically (write-then-rename in the corpus's tmp/ staging area) after
// every mutation so readers never observe a torn index. The manifest is a
// cache — Open rebuilds it from the blobs when it is missing or corrupt.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// manifestVersion guards the index schema; a reader that sees a different
// version falls back to a rebuild from the blobs.
const manifestVersion = 1

// manifest is the on-disk index schema. Entries are sorted by key.
type manifest struct {
	Version int     `json:"version"`
	Entries []Entry `json:"entries"`
}

// loadManifest reads and validates the index file.
func loadManifest(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest version %d (want %d)", m.Version, manifestVersion)
	}
	for i, e := range m.Entries {
		if e.Key == "" {
			return nil, fmt.Errorf("store: manifest entry %d has no key", i)
		}
	}
	return m.Entries, nil
}

// saveManifestLocked atomically rewrites the index. Callers hold c.mu.
func (c *Corpus) saveManifestLocked() error {
	entries := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	data, err := json.MarshalIndent(manifest{Version: manifestVersion, Entries: entries}, "", "  ")
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Join(c.dir, "tmp"), "manifest-*")
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: manifest: %w", err)
	}
	if err := os.Rename(tmpName, c.manifestPath()); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: manifest: %w", err)
	}
	return nil
}
