// Streaming binary-trace reader: the inverse of writer.go, decoding one
// compressed block at a time. Every malformed input — bad magic, corrupt
// varints, wrong CRCs, truncation, trailing bytes — returns an error
// wrapping ErrFormat; the decoder never panics and never allocates
// proportionally to attacker-controlled lengths.
package store

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"sherlock/internal/trace"
)

// Reader decodes one binary trace stream incrementally. Use NewReader to
// parse the header, then Next until io.EOF. The trailer's event count is
// validated before Next reports EOF, so a truncated stream can never be
// mistaken for a short trace.
type Reader struct {
	br          *bufio.Reader
	meta        Meta
	blockEvents int

	strings []string

	// Current block.
	raw      []byte
	off      int
	left     int // events remaining in this block
	prevTime int64
	prevAddr uint64

	count int
	done  bool
	err   error

	comp io.ReadCloser // reused flate reader
}

// NewReader parses the magic, version, and header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, formatErr("short magic: %v", err)
	}
	if string(magic[:4]) != Magic {
		return nil, formatErr("bad magic %q", magic[:4])
	}
	if magic[4] != Version {
		return nil, formatErr("unsupported version %d (want %d)", magic[4], Version)
	}
	rd := &Reader{br: br}
	var err error
	if rd.meta.App, err = rd.readString(); err != nil {
		return nil, fmt.Errorf("app: %w", err)
	}
	if rd.meta.Test, err = rd.readString(); err != nil {
		return nil, fmt.Errorf("test: %w", err)
	}
	seed, err := rd.readVarint()
	if err != nil {
		return nil, fmt.Errorf("seed: %w", err)
	}
	rd.meta.Seed = seed
	be, err := rd.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("block size: %w", err)
	}
	if be == 0 || be > maxBlockEvents {
		return nil, formatErr("block size %d out of range [1,%d]", be, maxBlockEvents)
	}
	rd.blockEvents = int(be)
	return rd, nil
}

// Meta returns the stream header's trace metadata.
func (rd *Reader) Meta() Meta { return rd.meta }

// Count returns the number of events decoded so far; after Next has
// returned io.EOF it equals the trailer's validated total.
func (rd *Reader) Count() int { return rd.count }

// Next returns the next event, or io.EOF after the last one. Any other
// error wraps ErrFormat (corruption) or comes from the underlying reader.
func (rd *Reader) Next() (trace.Event, error) {
	if rd.err != nil {
		return trace.Event{}, rd.err
	}
	if rd.left == 0 {
		if err := rd.nextBlock(); err != nil {
			rd.err = err
			return trace.Event{}, err
		}
		if rd.done {
			rd.err = io.EOF
			return trace.Event{}, io.EOF
		}
	}
	e, err := rd.decodeEvent()
	if err != nil {
		rd.err = err
		return trace.Event{}, err
	}
	rd.left--
	rd.count++
	if rd.left == 0 && rd.off != len(rd.raw) {
		rd.err = formatErr("block has %d undecoded payload bytes", len(rd.raw)-rd.off)
		return trace.Event{}, rd.err
	}
	return e, nil
}

// nextBlock reads, verifies, and decompresses the next block, or consumes
// the trailer and sets done.
func (rd *Reader) nextBlock() error {
	n, err := rd.readUvarint()
	if err != nil {
		return fmt.Errorf("block count: %w", err)
	}
	if n == 0 {
		// Trailer: total event count must match what we decoded.
		total, err := rd.readUvarint()
		if err != nil {
			return fmt.Errorf("trailer: %w", err)
		}
		if total != uint64(rd.count) {
			return formatErr("trailer declares %d events, decoded %d", total, rd.count)
		}
		rd.done = true
		return nil
	}
	if n > uint64(rd.blockEvents) {
		return formatErr("block of %d events exceeds declared block size %d", n, rd.blockEvents)
	}
	rawLen, err := rd.readUvarint()
	if err != nil {
		return fmt.Errorf("block raw length: %w", err)
	}
	if rawLen > maxBlockRaw {
		return formatErr("block raw length %d exceeds cap %d", rawLen, maxBlockRaw)
	}
	compLen, err := rd.readUvarint()
	if err != nil {
		return fmt.Errorf("block compressed length: %w", err)
	}
	if compLen > maxBlockRaw {
		return formatErr("block compressed length %d exceeds cap %d", compLen, maxBlockRaw)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(rd.br, crcb[:]); err != nil {
		return formatErr("block crc: %v", err)
	}
	comp := make([]byte, compLen)
	if _, err := io.ReadFull(rd.br, comp); err != nil {
		return formatErr("block payload: %v", err)
	}
	if got, want := crc32.ChecksumIEEE(comp), binary.LittleEndian.Uint32(crcb[:]); got != want {
		return formatErr("block crc mismatch: %#x != %#x", got, want)
	}

	if rd.comp == nil {
		rd.comp = flate.NewReader(bytes.NewReader(comp))
	} else if err := rd.comp.(flate.Resetter).Reset(bytes.NewReader(comp), nil); err != nil {
		return formatErr("flate reset: %v", err)
	}
	if cap(rd.raw) < int(rawLen) {
		rd.raw = make([]byte, rawLen)
	}
	rd.raw = rd.raw[:rawLen]
	if _, err := io.ReadFull(rd.comp, rd.raw); err != nil {
		return formatErr("block decompress: %v", err)
	}
	var one [1]byte
	if n, _ := io.ReadFull(rd.comp, one[:]); n != 0 {
		return formatErr("block decompresses past its declared raw length %d", rawLen)
	}
	rd.off = 0
	rd.left = int(n)
	rd.prevTime, rd.prevAddr = 0, 0
	return nil
}

// decodeEvent parses one event record from the current block payload.
func (rd *Reader) decodeEvent() (trace.Event, error) {
	var e trace.Event
	flags, err := rd.payloadByte()
	if err != nil {
		return e, fmt.Errorf("flags: %w", err)
	}
	if flags&flagReserved != 0 {
		return e, formatErr("event %d sets reserved flag bits %#x", rd.count, flags)
	}
	e.Kind = trace.Kind(flags & flagKindMask)
	acc := trace.Acc((flags & flagAccMask) >> flagAccShift)
	if acc > trace.AccWrite {
		return e, formatErr("event %d has invalid access class %d", rd.count, acc)
	}
	e.Acc = acc
	e.Lib = flags&flagLib != 0
	e.Unsafe = flags&flagUnsafe != 0

	dt, err := rd.payloadVarint()
	if err != nil {
		return e, fmt.Errorf("time: %w", err)
	}
	rd.prevTime += dt
	e.Time = rd.prevTime

	th, err := rd.payloadVarint()
	if err != nil {
		return e, fmt.Errorf("thread: %w", err)
	}
	e.Thread = int(th)

	ref, err := rd.payloadUvarint()
	if err != nil {
		return e, fmt.Errorf("name ref: %w", err)
	}
	if ref == 0 {
		s, err := rd.payloadString()
		if err != nil {
			return e, fmt.Errorf("name: %w", err)
		}
		rd.strings = append(rd.strings, s)
		e.Name = s
	} else {
		if ref > uint64(len(rd.strings)) {
			return e, formatErr("event %d references string %d of a %d-entry table", rd.count, ref, len(rd.strings))
		}
		e.Name = rd.strings[ref-1]
	}

	da, err := rd.payloadVarint()
	if err != nil {
		return e, fmt.Errorf("addr: %w", err)
	}
	rd.prevAddr += uint64(da)
	e.Addr = rd.prevAddr

	if e.Obj, err = rd.payloadUvarint(); err != nil {
		return e, fmt.Errorf("obj: %w", err)
	}
	site, err := rd.payloadVarint()
	if err != nil {
		return e, fmt.Errorf("site: %w", err)
	}
	e.Site = int(site)
	child, err := rd.payloadVarint()
	if err != nil {
		return e, fmt.Errorf("child: %w", err)
	}
	e.Child = int(child)

	if flags&flagExtra != 0 {
		n, err := rd.payloadUvarint()
		if err != nil {
			return e, fmt.Errorf("extra count: %w", err)
		}
		if n == 0 || n > maxExtra || n > uint64(len(rd.raw)-rd.off) {
			return e, formatErr("event %d declares %d extra values with %d payload bytes left", rd.count, n, len(rd.raw)-rd.off)
		}
		e.Extra = make([]uint64, n)
		for i := range e.Extra {
			if e.Extra[i], err = rd.payloadUvarint(); err != nil {
				return e, fmt.Errorf("extra %d: %w", i, err)
			}
		}
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Primitive decoding
// ---------------------------------------------------------------------------

// readUvarint reads a varint from the stream (header/block framing).
func (rd *Reader) readUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(rd.br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, formatErr("truncated varint")
		}
		return 0, err
	}
	return v, nil
}

func (rd *Reader) readVarint() (int64, error) {
	v, err := rd.readUvarint()
	return unzigzag(v), err
}

func (rd *Reader) readString() (string, error) {
	n, err := rd.readUvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", formatErr("string of %d bytes exceeds cap %d", n, maxStringLen)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(rd.br, b); err != nil {
		return "", formatErr("truncated %d-byte string: %v", n, err)
	}
	return string(b), nil
}

// payloadByte reads one byte from the current block payload.
func (rd *Reader) payloadByte() (byte, error) {
	if rd.off >= len(rd.raw) {
		return 0, formatErr("truncated block payload")
	}
	b := rd.raw[rd.off]
	rd.off++
	return b, nil
}

func (rd *Reader) payloadUvarint() (uint64, error) {
	v, n := binary.Uvarint(rd.raw[rd.off:])
	if n <= 0 {
		return 0, formatErr("truncated or oversized varint in block payload")
	}
	rd.off += n
	return v, nil
}

func (rd *Reader) payloadVarint() (int64, error) {
	v, err := rd.payloadUvarint()
	return unzigzag(v), err
}

func (rd *Reader) payloadString() (string, error) {
	n, err := rd.payloadUvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen || n > uint64(len(rd.raw)-rd.off) {
		return "", formatErr("string of %d bytes with %d payload bytes left", n, len(rd.raw)-rd.off)
	}
	s := string(rd.raw[rd.off : rd.off+int(n)])
	rd.off += int(n)
	return s, nil
}

// ---------------------------------------------------------------------------
// Whole-trace convenience
// ---------------------------------------------------------------------------

// ReadTrace decodes one complete binary trace and errors on trailing
// garbage after the trailer — a stored blob contains exactly one trace.
func ReadTrace(r io.Reader) (*trace.Trace, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := &trace.Trace{App: rd.meta.App, Test: rd.meta.Test, Seed: rd.meta.Seed}
	for {
		e, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Events = append(t.Events, e)
	}
	if _, err := rd.br.ReadByte(); err != io.EOF {
		return nil, formatErr("trailing garbage after trace trailer")
	}
	return t, nil
}

// DecodeTrace decodes a complete in-memory encoding (the inverse of
// EncodeTrace).
func DecodeTrace(data []byte) (*trace.Trace, error) {
	return ReadTrace(bytes.NewReader(data))
}
