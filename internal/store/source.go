// Corpus-backed trace sources and format sniffing. Source satisfies
// core.TraceSource structurally (this package does not import core), so a
// corpus plugs straight into core.InferFromSource while decoding one
// trace at a time — inference memory stays bounded by the largest single
// trace, not the corpus.
package store

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os"

	"sherlock/internal/obs"
	"sherlock/internal/trace"
)

// Source streams a fixed, deterministic sequence of corpus traces.
type Source struct {
	c    *Corpus
	keys []string
}

// Source returns a streaming source over the given keys in the given
// order, or over the whole corpus in sorted-key order when none are
// given. Missing keys surface as errors at iteration time.
func (c *Corpus) Source(keys ...string) *Source {
	if len(keys) == 0 {
		for _, e := range c.Entries() {
			keys = append(keys, e.Key)
		}
	}
	return &Source{c: c, keys: keys}
}

// Keys returns the keys the source will iterate, in order.
func (s *Source) Keys() []string { return append([]string(nil), s.keys...) }

// Traces decodes each trace in turn and hands it to yield, stopping on
// the first decode or yield error and between traces when ctx is done.
// When the corpus has a tracer, each decode records a "decode:<key>" span
// (the yield itself — inference work — is not part of the span).
func (s *Source) Traces(ctx context.Context, yield func(*trace.Trace) error) error {
	return s.KeyedTraces(ctx, func(_ string, t *trace.Trace) error { return yield(t) })
}

// KeyedTraces is Traces yielding each trace's content address alongside
// it, satisfying core.KeyedSource structurally — the incremental solve
// needs the keys to track checkpoint coverage.
func (s *Source) KeyedTraces(ctx context.Context, yield func(string, *trace.Trace) error) error {
	for _, key := range s.keys {
		if err := ctx.Err(); err != nil {
			return err
		}
		span := s.c.tracer.Root("decode", spanKey(key))
		t, err := s.c.Get(key)
		if err != nil {
			span.End()
			return err
		}
		span.Annotate(
			obs.Str("app", t.App),
			obs.Str("test", t.Test),
			obs.Int("events", t.Len()))
		span.End()
		if err := yield(key, t); err != nil {
			return err
		}
	}
	return nil
}

// Sniff reports whether data begins like a binary trace stream (magic
// prefix) rather than the JSON-lines interchange format.
func Sniff(data []byte) bool {
	return len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic
}

// Decode parses a trace in either supported serialization, detecting the
// format from the first bytes: the binary format's magic, otherwise
// JSON lines.
func Decode(r io.Reader) (*trace.Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(Magic))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if Sniff(head) {
		return ReadTrace(br)
	}
	return trace.Read(br)
}

// DecodeBytes is Decode over an in-memory buffer.
func DecodeBytes(data []byte) (*trace.Trace, error) {
	return Decode(bytes.NewReader(data))
}

// DecodeFile reads one trace file in either serialization.
func DecodeFile(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
