// Streaming binary-trace writer: events are buffered into fixed-size
// blocks, each block is flate-compressed, checksummed, and flushed before
// the next begins, so memory use is one block regardless of trace length.
package store

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"sherlock/internal/trace"
)

// Writer encodes one trace as a binary stream. Create with NewWriter, feed
// events with Add (timestamps in any order; deltas are signed), and finish
// with Close — the trailer written by Close is what makes the stream
// complete, and a reader treats its absence as truncation.
type Writer struct {
	w           *bufio.Writer
	blockEvents int

	// Current block, encoded form.
	buf     []byte
	inBlock int

	// Delta state, reset at block boundaries.
	prevTime int64
	prevAddr uint64

	// Per-trace string-interning table (name -> id).
	strings map[string]uint64

	total  int
	closed bool
	err    error

	// Reused compression state.
	comp    *flate.Writer
	compBuf []byte
}

// NewWriter writes the magic, version, and header for meta and returns a
// Writer positioned at the first event. blockEvents <= 0 selects
// DefaultBlockEvents; EncodeTrace always uses the default, which is the
// canonical (content-addressed) form.
func NewWriter(w io.Writer, meta Meta, blockEvents int) (*Writer, error) {
	if blockEvents <= 0 {
		blockEvents = DefaultBlockEvents
	}
	if blockEvents > maxBlockEvents {
		return nil, fmt.Errorf("store: block size %d exceeds the format cap %d", blockEvents, maxBlockEvents)
	}
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 0, 64)
	hdr = append(hdr, Magic...)
	hdr = append(hdr, Version)
	hdr = appendString(hdr, meta.App)
	hdr = appendString(hdr, meta.Test)
	hdr = appendVarint(hdr, meta.Seed)
	hdr = appendUvarint(hdr, uint64(blockEvents))
	if _, err := bw.Write(hdr); err != nil {
		return nil, fmt.Errorf("store: write header: %w", err)
	}
	comp, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	return &Writer{
		w:           bw,
		blockEvents: blockEvents,
		strings:     make(map[string]uint64),
		comp:        comp,
	}, nil
}

// Add appends one event to the stream, flushing a finished block to the
// underlying writer when the block fills.
func (wr *Writer) Add(e *trace.Event) error {
	if wr.err != nil {
		return wr.err
	}
	if wr.closed {
		return fmt.Errorf("store: Add after Close")
	}
	if e.Kind > trace.KindEnd {
		return wr.fail(fmt.Errorf("store: event %d has invalid kind %d", wr.total, e.Kind))
	}
	if e.Acc > trace.AccWrite {
		return wr.fail(fmt.Errorf("store: event %d has invalid access class %d", wr.total, e.Acc))
	}

	flags := byte(e.Kind) | byte(e.Acc)<<flagAccShift
	if e.Lib {
		flags |= flagLib
	}
	if e.Unsafe {
		flags |= flagUnsafe
	}
	if len(e.Extra) > 0 {
		flags |= flagExtra
	}
	wr.buf = append(wr.buf, flags)
	wr.buf = appendVarint(wr.buf, e.Time-wr.prevTime)
	wr.buf = appendVarint(wr.buf, int64(e.Thread))
	if id, ok := wr.strings[e.Name]; ok {
		wr.buf = appendUvarint(wr.buf, id+1)
	} else {
		wr.buf = appendUvarint(wr.buf, 0)
		wr.buf = appendString(wr.buf, e.Name)
		wr.strings[e.Name] = uint64(len(wr.strings))
	}
	wr.buf = appendVarint(wr.buf, int64(e.Addr-wr.prevAddr))
	wr.buf = appendUvarint(wr.buf, e.Obj)
	wr.buf = appendVarint(wr.buf, int64(e.Site))
	wr.buf = appendVarint(wr.buf, int64(e.Child))
	if len(e.Extra) > 0 {
		wr.buf = appendUvarint(wr.buf, uint64(len(e.Extra)))
		for _, x := range e.Extra {
			wr.buf = appendUvarint(wr.buf, x)
		}
	}
	wr.prevTime, wr.prevAddr = e.Time, e.Addr
	wr.inBlock++
	wr.total++
	if wr.inBlock >= wr.blockEvents {
		return wr.flushBlock()
	}
	return nil
}

// flushBlock compresses, checksums, and writes the pending block.
func (wr *Writer) flushBlock() error {
	if wr.inBlock == 0 {
		return nil
	}
	wr.compBuf = wr.compBuf[:0]
	sink := (*sliceWriter)(&wr.compBuf)
	wr.comp.Reset(sink)
	if _, err := wr.comp.Write(wr.buf); err != nil {
		return wr.fail(fmt.Errorf("store: compress block: %w", err))
	}
	if err := wr.comp.Close(); err != nil {
		return wr.fail(fmt.Errorf("store: compress block: %w", err))
	}

	var hdr []byte
	hdr = appendUvarint(hdr, uint64(wr.inBlock))
	hdr = appendUvarint(hdr, uint64(len(wr.buf)))
	hdr = appendUvarint(hdr, uint64(len(wr.compBuf)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(wr.compBuf))
	if _, err := wr.w.Write(hdr); err != nil {
		return wr.fail(fmt.Errorf("store: write block header: %w", err))
	}
	if _, err := wr.w.Write(wr.compBuf); err != nil {
		return wr.fail(fmt.Errorf("store: write block payload: %w", err))
	}
	wr.buf = wr.buf[:0]
	wr.inBlock = 0
	wr.prevTime, wr.prevAddr = 0, 0
	return nil
}

// Close flushes the final partial block and writes the trailer (end marker
// plus total event count). The stream is not decodable without it.
func (wr *Writer) Close() error {
	if wr.err != nil {
		return wr.err
	}
	if wr.closed {
		return nil
	}
	if err := wr.flushBlock(); err != nil {
		return err
	}
	var tr []byte
	tr = appendUvarint(tr, 0) // end-of-blocks marker
	tr = appendUvarint(tr, uint64(wr.total))
	if _, err := wr.w.Write(tr); err != nil {
		return wr.fail(fmt.Errorf("store: write trailer: %w", err))
	}
	wr.closed = true
	return wr.w.Flush()
}

func (wr *Writer) fail(err error) error {
	wr.err = err
	return err
}

// sliceWriter lets flate append into a reusable byte slice.
type sliceWriter []byte

func (s *sliceWriter) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}

// EncodeTrace returns the canonical binary encoding of t: default block
// size, fixed compression level, interning in first-appearance order. The
// corpus content address is the SHA-256 of these bytes.
func EncodeTrace(t *trace.Trace) ([]byte, error) {
	var buf sliceWriter
	wr, err := NewWriter(&buf, Meta{App: t.App, Test: t.Test, Seed: t.Seed}, 0)
	if err != nil {
		return nil, err
	}
	for i := range t.Events {
		if err := wr.Add(&t.Events[i]); err != nil {
			return nil, err
		}
	}
	if err := wr.Close(); err != nil {
		return nil, err
	}
	return buf, nil
}
