package trace_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"sherlock/internal/apps"
	"sherlock/internal/sched"
	"sherlock/internal/trace"
)

// FuzzJSONDecode hammers the JSON-lines decoder: corrupt headers, forged
// event counts, malformed events, and trailing garbage must all return
// errors — never panic, never a silently short trace. Seeds are the
// JSON-lines encodings of one captured trace per benchmark app plus
// targeted corruptions.
func FuzzJSONDecode(f *testing.F) {
	for _, app := range apps.All() {
		run, err := sched.Run(app, app.Tests[0], sched.Options{Seed: 1})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := run.Trace.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"app":"a","test":"t","events":-1}` + "\n"))
	f.Add([]byte(`{"app":"a","test":"t","events":99999999}` + "\n"))
	f.Add([]byte(`{"app":"a","test":"t","events":1}` + "\n" + `{"k":"bogus"}` + "\n"))
	f.Add([]byte(`{"app":"a","test":"t","events":0}` + "\n" + "trailing"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: the decoded trace must re-serialize and
		// round-trip to the same events.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("decoded trace does not re-encode: %v", err)
		}
		tr2, err := trace.Read(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		if tr2.App != tr.App || tr2.Test != tr.Test || tr2.Seed != tr.Seed {
			t.Fatal("round trip changed metadata")
		}
		if len(tr2.Events) != len(tr.Events) {
			t.Fatal("round trip changed event count")
		}
		for i := range tr.Events {
			a, b := tr.Events[i], tr2.Events[i]
			// The wire format's omitempty collapses a present-but-empty
			// extra list to an absent one; normalize before comparing.
			if len(a.Extra) == 0 {
				a.Extra = nil
			}
			if len(b.Extra) == 0 {
				b.Extra = nil
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("round trip changed event %d: %+v != %+v", i, a, b)
			}
		}
	})
}
