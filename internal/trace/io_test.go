package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	return &Trace{
		App: "App-4", Test: "Tests::ByteBuffer", Seed: 42,
		Events: []Event{
			{Time: 10, Thread: 0, Kind: KindBegin, Name: "C::m", Obj: 3},
			{Time: 20, Thread: 1, Kind: KindWrite, Name: "C::f", Addr: 0x1000, Site: 7, Acc: AccWrite},
			{Time: 30, Thread: 1, Kind: KindRead, Name: "C::f", Addr: 0x1000, Site: 8, Acc: AccRead},
			{Time: 40, Thread: 0, Kind: KindEnd, Name: "Lib::Api", Lib: true, Addr: 9, Child: 2,
				Extra: []uint64{4, 5}},
			{Time: 50, Thread: 2, Kind: KindBegin, Name: "List::Add", Lib: true, Unsafe: true,
				Addr: 11, Acc: AccWrite},
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != tr.App || got.Test != tr.Test || got.Seed != tr.Seed {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Errorf("events mismatch:\n got %+v\nwant %+v", got.Events, tr.Events)
	}
}

func TestTraceReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Read(strings.NewReader(`{"app":"a","test":"t","events":2}` + "\n" +
		`{"t":1,"th":0,"k":"read","n":"C::f"}` + "\n")); err == nil {
		t.Error("truncated trace should fail")
	}
	if _, err := Read(strings.NewReader(`{"app":"a","test":"t","events":1}` + "\n" +
		`{"t":1,"th":0,"k":"bogus","n":"C::f"}` + "\n")); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := Read(strings.NewReader(`{"app":"a","test":"t","events":1}` + "\n" +
		`{"t":1,"th":0,"k":"read","n":"C::f","acc":"zzz"}` + "\n")); err == nil {
		t.Error("unknown access class should fail")
	}
	if _, err := Read(strings.NewReader(`{"app":"a","test":"t","events":-4}` + "\n")); err == nil {
		t.Error("negative event count should fail")
	}
}

// The header's event count is untrusted: events beyond it — or any other
// trailing bytes — must be an error, not a silently clipped trace.
func TestTraceReadTrailingGarbage(t *testing.T) {
	cases := map[string]string{
		"extra event": `{"app":"a","test":"t","events":1}` + "\n" +
			`{"t":1,"th":0,"k":"read","n":"C::f"}` + "\n" +
			`{"t":2,"th":0,"k":"read","n":"C::f"}` + "\n",
		"non-json tail": `{"app":"a","test":"t","events":1}` + "\n" +
			`{"t":1,"th":0,"k":"read","n":"C::f"}` + "\n" + "%%garbage%%",
		"second header": `{"app":"a","test":"t","events":0}` + "\n" +
			`{"app":"b","test":"t","events":0}` + "\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		} else if !strings.Contains(err.Error(), "trailing garbage") {
			t.Errorf("%s: want trailing-garbage error, got %v", name, err)
		}
	}
	// Trailing whitespace is not garbage.
	if _, err := Read(strings.NewReader(`{"app":"a","test":"t","events":0}` + "\n\n  \n")); err != nil {
		t.Errorf("trailing whitespace should be accepted, got %v", err)
	}
}

// Property: round-tripping random traces is the identity.
func TestTraceRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		tr := &Trace{App: "a", Test: "t", Seed: int64(trial)}
		n := rng.Intn(40)
		tm := int64(0)
		for i := 0; i < n; i++ {
			tm += int64(rng.Intn(100))
			kind := Kind(rng.Intn(4))
			acc := AccNone
			if kind == KindRead {
				acc = AccRead
			} else if kind == KindWrite {
				acc = AccWrite
			}
			e := Event{
				Time: tm, Thread: rng.Intn(4), Kind: kind,
				Name: "C::x", Addr: uint64(rng.Intn(100)), Site: rng.Intn(50),
				Lib: rng.Intn(2) == 0, Acc: acc,
			}
			if rng.Intn(5) == 0 {
				e.Extra = []uint64{uint64(rng.Intn(9)), uint64(rng.Intn(9))}
			}
			tr.Events = append(tr.Events, e)
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Events) != len(tr.Events) {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for i := range tr.Events {
			if !reflect.DeepEqual(got.Events[i], tr.Events[i]) {
				t.Fatalf("trial %d event %d: %+v != %+v", trial, i, got.Events[i], tr.Events[i])
			}
		}
	}
}
