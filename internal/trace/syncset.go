// SyncSet: the typed result surface of inference. Earlier revisions passed
// bare map[Key]Role values between the engine and its consumers (race
// detection, TSVD analysis); the named type documents the contract and
// carries the small query helpers every consumer was reimplementing.
package trace

import "sort"

// SyncSet maps every inferred synchronization operation to its role. It is
// the currency between the inference engine and downstream consumers: the
// race detector's SherLock_dr model and the TSVD analyzer both take one.
//
// A nil SyncSet is valid and empty.
type SyncSet map[Key]Role

// Keys returns every operation in the set, sorted.
func (s SyncSet) Keys() []Key {
	out := make([]Key, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Acquires returns the operations inferred as acquires, sorted.
func (s SyncSet) Acquires() []Key { return s.withRole(RoleAcquire) }

// Releases returns the operations inferred as releases, sorted.
func (s SyncSet) Releases() []Key { return s.withRole(RoleRelease) }

func (s SyncSet) withRole(r Role) []Key {
	var out []Key
	for k, role := range s {
		if role == r {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Has reports whether k is in the set with role r.
func (s SyncSet) Has(k Key, r Role) bool {
	role, ok := s[k]
	return ok && role == r
}

// Clone returns an independent copy of the set.
func (s SyncSet) Clone() SyncSet {
	if s == nil {
		return nil
	}
	out := make(SyncSet, len(s))
	for k, r := range s {
		out[k] = r
	}
	return out
}

// Equal reports whether two sets contain exactly the same roles.
func (s SyncSet) Equal(o SyncSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k, r := range s {
		if or, ok := o[k]; !ok || or != r {
			return false
		}
	}
	return true
}
