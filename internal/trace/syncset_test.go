package trace

import (
	"reflect"
	"testing"
)

func TestSyncSetQueries(t *testing.T) {
	s := SyncSet{
		"write:C::flag": RoleRelease,
		"read:C::flag":  RoleAcquire,
		"begin:L::Wait": RoleAcquire,
	}
	if got, want := s.Keys(), []Key{"begin:L::Wait", "read:C::flag", "write:C::flag"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Keys() = %v, want %v", got, want)
	}
	if got, want := s.Acquires(), []Key{"begin:L::Wait", "read:C::flag"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Acquires() = %v, want %v", got, want)
	}
	if got, want := s.Releases(), []Key{"write:C::flag"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Releases() = %v, want %v", got, want)
	}
	if !s.Has("write:C::flag", RoleRelease) {
		t.Error("Has missed a present entry")
	}
	if s.Has("write:C::flag", RoleAcquire) {
		t.Error("Has matched the wrong role")
	}
	if s.Has("nope", RoleAcquire) {
		t.Error("Has matched an absent key")
	}
}

func TestSyncSetCloneAndEqual(t *testing.T) {
	s := SyncSet{"write:C::x": RoleRelease}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c["read:C::x"] = RoleAcquire
	if s.Equal(c) {
		t.Error("mutating the clone leaked into the original")
	}
	if len(s) != 1 {
		t.Error("original mutated")
	}
	d := SyncSet{"write:C::x": RoleAcquire}
	if s.Equal(d) {
		t.Error("Equal ignored a role mismatch")
	}
}

func TestSyncSetNil(t *testing.T) {
	var s SyncSet
	if len(s.Keys()) != 0 || len(s.Acquires()) != 0 || len(s.Releases()) != 0 {
		t.Error("nil SyncSet must behave as empty")
	}
	if s.Has("k", RoleAcquire) {
		t.Error("nil SyncSet has nothing")
	}
	if s.Clone() != nil {
		t.Error("Clone of nil is nil")
	}
	if !s.Equal(SyncSet{}) {
		t.Error("nil and empty sets are equal")
	}
}
