// Package trace defines the execution-log schema that SherLock's Observer
// records and every downstream component (window extraction, solver, race
// detection, TSVD) consumes.
//
// Per the paper (Section 4.1), each log entry carries: a timestamp, a thread
// id, an operation type (read, write, method entry, method exit), the field
// name and memory address for accesses, and the method name and parent
// object id for method entry/exit. Library/system API calls are instrumented
// at the call site: the "immediately before" event is a Begin and the
// "immediately after" event is an End of the API's static name.
package trace

import (
	"fmt"
	"strings"
)

// Kind is the operation type of a log entry.
type Kind uint8

// Operation types.
const (
	KindRead  Kind = iota // heap read of a field
	KindWrite             // heap write of a field
	KindBegin             // method entry, or immediately-before a library call
	KindEnd               // method exit, or immediately-after a library call
)

func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindBegin:
		return "begin"
	case KindEnd:
		return "end"
	}
	return "?"
}

// Acc classifies the data-access semantics of an operation for
// conflicting-pair detection. Heap reads/writes carry their own kind;
// thread-unsafe library calls (e.g. List.Add) are tagged with the access
// semantics of the API.
type Acc uint8

// Access semantics.
const (
	AccNone  Acc = iota // not conflict-eligible
	AccRead             // read semantics
	AccWrite            // write semantics
)

// Event is one log entry.
type Event struct {
	Time   int64  // virtual nanoseconds since the start of the run
	Thread int    // thread id (0 = the test's main thread)
	Kind   Kind   // operation type
	Name   string // fully qualified static name, "Class::Member"
	Addr   uint64 // field instance address, or receiver/resource id for lib calls
	Obj    uint64 // parent object id for method entry/exit (0 if none)
	Site   int    // static statement site id (stable across runs)
	Lib    bool   // true for library-API call-site events
	Unsafe bool   // true for thread-unsafe library accesses (TSVD-eligible)
	Acc    Acc    // access semantics for conflict detection

	// Child is the thread id spawned or joined by this operation (fork and
	// join call sites), 0 when not applicable. Real instrumentation
	// observes the thread/task object argument the same way.
	Child int
	// Extra lists additional resource ids the operation touches (e.g.
	// every handle of a WaitHandle.WaitAll). Nil for almost all events.
	Extra []uint64
}

// ConflictEligible reports whether the event can participate in a
// conflicting-access pair: a heap access, or a thread-unsafe library call.
func (e *Event) ConflictEligible() bool {
	return e.Acc != AccNone && e.Addr != 0
}

// String renders the entry for logs and debugging output.
func (e *Event) String() string {
	return fmt.Sprintf("%10d t%-2d %-5s %-40s addr=%#x obj=%d site=%d",
		e.Time, e.Thread, e.Kind, e.Name, e.Addr, e.Obj, e.Site)
}

// Trace is the full log of one test execution.
type Trace struct {
	App    string  // application name
	Test   string  // unit-test name
	Seed   int64   // scheduler seed that produced this interleaving
	Events []Event // time-ordered log entries
}

// Append adds one entry; the scheduler guarantees non-decreasing timestamps.
func (t *Trace) Append(e Event) {
	t.Events = append(t.Events, e)
}

// Len returns the number of log entries.
func (t *Trace) Len() int { return len(t.Events) }

// Key identifies a synchronization candidate: a static operation that could
// serve as an acquire or release. Keys are what the Solver's random
// variables are named after and what the Perturber injects delays before.
//
// Encoding: "<kind>:<Class::Member>", e.g. "write:k8s.ByteBuffer::endOfFile"
// or "begin:System.Threading.Monitor::Enter".
type Key string

// KeyFor builds the candidate key for an operation kind and static name.
func KeyFor(k Kind, name string) Key {
	return Key(k.String() + ":" + name)
}

// EventKey returns the candidate key of a log entry.
func EventKey(e *Event) Key { return KeyFor(e.Kind, e.Name) }

// Kind returns the operation kind encoded in the key.
func (k Key) Kind() Kind {
	switch {
	case strings.HasPrefix(string(k), "read:"):
		return KindRead
	case strings.HasPrefix(string(k), "write:"):
		return KindWrite
	case strings.HasPrefix(string(k), "begin:"):
		return KindBegin
	default:
		return KindEnd
	}
}

// Name returns the static Class::Member name encoded in the key.
func (k Key) Name() string {
	if i := strings.IndexByte(string(k), ':'); i >= 0 {
		return string(k)[i+1:]
	}
	return string(k)
}

// Class returns the class part of the key's static name ("" if the name has
// no Class:: qualifier). The Mostly-Paired hypothesis groups candidates by
// class.
func (k Key) Class() string {
	name := k.Name()
	if i := strings.Index(name, "::"); i >= 0 {
		return name[:i]
	}
	return ""
}

// Member returns the member part of the key's static name.
func (k Key) Member() string {
	name := k.Name()
	if i := strings.Index(name, "::"); i >= 0 {
		return name[i+2:]
	}
	return name
}

// IsField reports whether the key names a heap field (read/write) rather
// than a method.
func (k Key) IsField() bool {
	kk := k.Kind()
	return kk == KindRead || kk == KindWrite
}

// Role is the synchronization role of an operation.
type Role uint8

// Synchronization roles.
const (
	RoleAcquire Role = iota
	RoleRelease
)

func (r Role) String() string {
	if r == RoleAcquire {
		return "acquire"
	}
	return "release"
}

// NaturalRole returns the role an operation kind can naturally serve under
// the Read-Acquire & Write-Release property (Section 2): reads and method
// entries acquire; writes and method exits release.
func NaturalRole(k Kind) Role {
	if k == KindRead || k == KindBegin {
		return RoleAcquire
	}
	return RoleRelease
}

// AcquireCapable reports whether kind k can serve as an acquire under the
// Read-Acquire & Write-Release property.
func AcquireCapable(k Kind) bool { return k == KindRead || k == KindBegin }

// ReleaseCapable reports whether kind k can serve as a release under the
// Read-Acquire & Write-Release property.
func ReleaseCapable(k Kind) bool { return k == KindWrite || k == KindEnd }

// PairedKey returns the Mostly-Paired counterpart for a field key: the
// write key for a read key and vice versa. For method keys it returns ""
// (method pairing is by class, not one-to-one).
func (k Key) PairedKey() Key {
	switch k.Kind() {
	case KindRead:
		return KeyFor(KindWrite, k.Name())
	case KindWrite:
		return KeyFor(KindRead, k.Name())
	}
	return ""
}

// Display renders a key the way the paper's Tables 8/9 list inferred
// synchronizations: fields as "Read-C::f"/"Write-C::f", methods as
// "C::M-Begin"/"C::M-End", library APIs by bare name.
func (k Key) Display() string {
	name := k.Name()
	switch k.Kind() {
	case KindRead:
		return "Read-" + name
	case KindWrite:
		return "Write-" + name
	case KindBegin:
		return name + "-Begin"
	default:
		return name + "-End"
	}
}
