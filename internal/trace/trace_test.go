package trace

import (
	"testing"
	"testing/quick"
)

func TestKeyRoundTrip(t *testing.T) {
	cases := []struct {
		kind Kind
		name string
	}{
		{KindRead, "k8s.ByteBuffer::endOfFile"},
		{KindWrite, "App.WorkingDays.ChristianHolidays::ascension"},
		{KindBegin, "System.Threading.Monitor::Enter"},
		{KindEnd, "Radical.Messaging.MessageBroker::SubscribeCore"},
	}
	for _, c := range cases {
		k := KeyFor(c.kind, c.name)
		if k.Kind() != c.kind {
			t.Errorf("Key %q kind = %v, want %v", k, k.Kind(), c.kind)
		}
		if k.Name() != c.name {
			t.Errorf("Key %q name = %q, want %q", k, k.Name(), c.name)
		}
	}
}

func TestKeyClassMember(t *testing.T) {
	k := KeyFor(KindBegin, "System.Threading.Monitor::Enter")
	if k.Class() != "System.Threading.Monitor" {
		t.Errorf("Class = %q", k.Class())
	}
	if k.Member() != "Enter" {
		t.Errorf("Member = %q", k.Member())
	}
	bare := KeyFor(KindBegin, "main")
	if bare.Class() != "" || bare.Member() != "main" {
		t.Errorf("bare name: class %q member %q", bare.Class(), bare.Member())
	}
}

func TestNaturalRolesAndCapabilities(t *testing.T) {
	if NaturalRole(KindRead) != RoleAcquire || NaturalRole(KindBegin) != RoleAcquire {
		t.Error("reads and begins must be acquires")
	}
	if NaturalRole(KindWrite) != RoleRelease || NaturalRole(KindEnd) != RoleRelease {
		t.Error("writes and ends must be releases")
	}
	if !AcquireCapable(KindRead) || AcquireCapable(KindWrite) {
		t.Error("acquire capability wrong for field ops")
	}
	if !ReleaseCapable(KindEnd) || ReleaseCapable(KindBegin) {
		t.Error("release capability wrong for method ops")
	}
}

func TestPairedKey(t *testing.T) {
	r := KeyFor(KindRead, "C::f")
	w := KeyFor(KindWrite, "C::f")
	if r.PairedKey() != w || w.PairedKey() != r {
		t.Errorf("field pairing broken: %q <-> %q", r.PairedKey(), w.PairedKey())
	}
	if KeyFor(KindBegin, "C::m").PairedKey() != "" {
		t.Error("method keys have no one-to-one pair")
	}
}

func TestDisplay(t *testing.T) {
	cases := map[Key]string{
		KeyFor(KindRead, "C::f"):  "Read-C::f",
		KeyFor(KindWrite, "C::f"): "Write-C::f",
		KeyFor(KindBegin, "C::m"): "C::m-Begin",
		KeyFor(KindEnd, "C::m"):   "C::m-End",
	}
	for k, want := range cases {
		if got := k.Display(); got != want {
			t.Errorf("Display(%q) = %q, want %q", k, got, want)
		}
	}
}

func TestConflictEligible(t *testing.T) {
	e := Event{Kind: KindWrite, Acc: AccWrite, Addr: 42}
	if !e.ConflictEligible() {
		t.Error("heap write with address should be conflict-eligible")
	}
	e2 := Event{Kind: KindBegin, Acc: AccNone, Addr: 42}
	if e2.ConflictEligible() {
		t.Error("method entry should not be conflict-eligible")
	}
	e3 := Event{Kind: KindBegin, Acc: AccWrite, Addr: 7, Lib: true, Unsafe: true}
	if !e3.ConflictEligible() {
		t.Error("thread-unsafe lib call should be conflict-eligible")
	}
}

func TestTraceAppend(t *testing.T) {
	var tr Trace
	tr.Append(Event{Time: 1})
	tr.Append(Event{Time: 2})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

// Property: EventKey kind/name always round-trips for any kind and any name
// without a colon prefix ambiguity.
func TestKeyRoundTripProperty(t *testing.T) {
	f := func(kindRaw uint8, cls, mem string) bool {
		kind := Kind(kindRaw % 4)
		name := "C" + sanitize(cls) + "::" + "M" + sanitize(mem)
		k := KeyFor(kind, name)
		return k.Kind() == kind && k.Name() == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			out = append(out, r)
		}
	}
	return string(out)
}
