// Package tsvd reproduces the "Enhancing TSVD inference" experiment of the
// SherLock paper (Section 5.6). TSVD [Li et al., SOSP'19] hunts
// thread-safety violations: conflicting calls into thread-unsafe library
// APIs (List.Add vs List.get_Item on the same object). To avoid wasting
// effort on already-synchronized call pairs, TSVD infers happens-before
// between a pair by injecting a delay before the first call and checking
// whether the delay cascades to the second.
//
// This package implements that inference over our traces — one delayed run
// per first-call site — and the SherLock enhancement: a pair also counts as
// synchronized when SherLock's inferred operations prove the pair ordered
// (no race on the collection under the SherLock_dr happens-before model).
package tsvd

import (
	"context"
	"sort"

	"sherlock/internal/prog"
	"sherlock/internal/race"
	"sherlock/internal/sched"
	"sherlock/internal/trace"
)

// Config tunes the analysis.
type Config struct {
	Runs  int   // plain runs per test to discover conflicting pairs
	Near  int64 // pairing window (virtual ns)
	Delay int64 // injected delay (virtual ns)
	Seed  int64
}

// DefaultConfig mirrors the paper's ratios at virtual-time scale.
func DefaultConfig() Config {
	return Config{Runs: 3, Near: 1_000_000, Delay: 100_000, Seed: 7}
}

// Pair is a conflicting thread-unsafe API call pair (static sites, first
// call's site first).
type Pair struct {
	SiteA, SiteB int
	APIA, APIB   string
}

// Result summarizes the experiment for one application.
type Result struct {
	App string
	// Conflicting lists every conflicting call pair observed.
	Conflicting []Pair
	// TSVDSynced are pairs TSVD's delay-propagation inferred as ordered.
	TSVDSynced []Pair
	// SherSynced are pairs proven ordered by SherLock's inferred
	// synchronizations (no race on the collection under SherLock_dr).
	SherSynced []Pair
}

// occurrence is one dynamic instance of a conflicting pair.
type occurrence struct {
	pair    Pair
	test    int
	addr    uint64
	threadA int
	ta, tb  int64
}

// Analyze runs the full experiment on one application. ctx cancels between
// test executions.
func Analyze(ctx context.Context, app *prog.Program, inferred trace.SyncSet, cfg Config) (*Result, error) {
	if err := app.Finalize(); err != nil {
		return nil, err
	}
	res := &Result{App: app.Name}

	// Phase 1: plain runs — discover conflicting pairs and collect the
	// racy-collection evidence for the SherLock enhancement.
	pairSet := map[Pair]bool{}
	pairTests := map[Pair]map[int]bool{} // which tests exhibit the pair
	racedAddrs := map[Pair]bool{}        // pair's collection raced under SherLock_dr
	model := race.NewSherLockModel(inferred)

	for run := 0; run < cfg.Runs; run++ {
		for ti, test := range app.Tests {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := sched.RunContext(ctx, app, test, sched.Options{
				Seed:          cfg.Seed + int64(run)*911 + int64(ti)*17,
				HiddenMethods: app.Truth.HiddenMethods,
			})
			if err != nil {
				return nil, err
			}
			if r.Deadlocked {
				continue
			}
			occs := findOccurrences(r.Trace, cfg.Near)
			racy := racyAddrs(model, r.Trace)
			for _, o := range occs {
				pairSet[o.pair] = true
				if pairTests[o.pair] == nil {
					pairTests[o.pair] = map[int]bool{}
				}
				pairTests[o.pair][ti] = true
				if racy[o.addr] {
					racedAddrs[o.pair] = true
				}
			}
		}
	}

	// Phase 2: TSVD delay probing — one delayed run per distinct
	// first-call site, over the tests where the pair occurred.
	siteTests := map[int]map[int]bool{}
	for p, tests := range pairTests {
		if siteTests[p.SiteA] == nil {
			siteTests[p.SiteA] = map[int]bool{}
		}
		for ti := range tests {
			siteTests[p.SiteA][ti] = true
		}
	}
	// A delay before the first call either propagates (the second call is
	// held back too: the pair survives in order, with the first call
	// executing right after its delay window) or it does not (the second
	// call overtakes the delayed first call: the pair shows up REVERSED,
	// with the new first call landing inside the delay window).
	const slack = 2_000 // service-time tolerance after a delay window
	supported := map[Pair]bool{}
	refuted := map[Pair]bool{}
	for site, tests := range siteTests {
		for ti := range tests {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := sched.RunContext(ctx, app, app.Tests[ti], sched.Options{
				Seed:          cfg.Seed + int64(site)*131 + int64(ti)*17,
				HiddenMethods: app.Truth.HiddenMethods,
				SiteDelays:    map[int]int64{site: cfg.Delay},
			})
			if err != nil {
				return nil, err
			}
			if r.Deadlocked {
				continue
			}
			inDelay := func(t int64) bool {
				for _, d := range r.Delays {
					if d.Site == site && t > d.Start && t < d.End {
						return true
					}
				}
				return false
			}
			afterDelay := func(t int64) bool {
				for _, d := range r.Delays {
					if d.Site == site && t >= d.End && t <= d.End+slack {
						return true
					}
				}
				return false
			}
			for _, o := range findOccurrences(r.Trace, cfg.Near+cfg.Delay) {
				if o.pair.SiteA == site && afterDelay(o.ta) {
					// The delayed call still came first: propagated.
					supported[o.pair] = true
				}
				if o.pair.SiteB == site && inDelay(o.ta) {
					// The other call overtook the delayed one: the
					// original-order pair is not synchronized.
					refuted[Pair{SiteA: o.pair.SiteB, SiteB: o.pair.SiteA,
						APIA: o.pair.APIB, APIB: o.pair.APIA}] = true
				}
			}
		}
	}
	tsvdSynced := map[Pair]bool{}
	for p := range supported {
		if !refuted[p] {
			tsvdSynced[p] = true
		}
	}

	for p := range pairSet {
		res.Conflicting = append(res.Conflicting, p)
		if tsvdSynced[p] {
			res.TSVDSynced = append(res.TSVDSynced, p)
		}
		if !racedAddrs[p] {
			res.SherSynced = append(res.SherSynced, p)
		}
	}
	sortPairs(res.Conflicting)
	sortPairs(res.TSVDSynced)
	sortPairs(res.SherSynced)
	return res, nil
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].SiteA != ps[j].SiteA {
			return ps[i].SiteA < ps[j].SiteA
		}
		return ps[i].SiteB < ps[j].SiteB
	})
}

// findOccurrences extracts conflicting unsafe-call pair instances from a
// trace: same collection object, different threads, at least one write
// semantics, within near.
func findOccurrences(tr *trace.Trace, near int64) []occurrence {
	type call struct {
		e trace.Event
	}
	byAddr := map[uint64][]call{}
	for _, e := range tr.Events {
		if e.Unsafe && e.Kind == trace.KindBegin {
			byAddr[e.Addr] = append(byAddr[e.Addr], call{e})
		}
	}
	var out []occurrence
	for addr, calls := range byAddr {
		for j := 1; j < len(calls); j++ {
			b := calls[j].e
			for i := j - 1; i >= 0; i-- {
				a := calls[i].e
				if b.Time-a.Time > near {
					break
				}
				if a.Thread == b.Thread {
					continue
				}
				if a.Acc != trace.AccWrite && b.Acc != trace.AccWrite {
					continue
				}
				out = append(out, occurrence{
					pair: Pair{SiteA: a.Site, SiteB: b.Site, APIA: a.Name, APIB: b.Name},
					addr: addr, threadA: a.Thread, ta: a.Time, tb: b.Time,
				})
			}
		}
	}
	return out
}

// racyAddrs returns the addresses the SherLock_dr model reports races on.
func racyAddrs(model race.SyncModel, tr *trace.Trace) map[uint64]bool {
	d := race.NewDetector(model)
	d.Process(tr)
	out := map[uint64]bool{}
	for _, r := range d.Reports() {
		out[r.Addr] = true
	}
	return out
}
