package tsvd

import (
	"context"
	"testing"

	"sherlock/internal/core"
	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

// syncedApp: two threads touch the same List and a plain counter, ordered
// by a semaphore. A second test arrives late at the WaitOne so both
// contended and uncontended interleavings occur across runs.
func syncedApp() *prog.Program {
	p := prog.New("tsvd-synced", "TSVDSynced")
	p.AddMethod("C::adder",
		prog.CpJ(250, 0.8),
		prog.ListAdd("list"),
		prog.Wr("C::count", "o", 1),
		prog.Set("S"),
	)
	p.AddMethod("C::reader",
		prog.CpJ(400, 0.95),
		prog.Wait("S"),
		prog.Rd("C::count", "o"),
		prog.ListRead("list"),
	)
	p.AddMethod("C::lateReader",
		prog.Cp(900),
		prog.Wait("S"),
		prog.Rd("C::count", "o"),
		prog.ListRead("list"),
	)
	p.AddTest("T1",
		prog.Go(prog.ForkThread, "C::reader", "o", "hr"),
		prog.Go(prog.ForkThread, "C::adder", "o", "ha"),
		prog.JoinT("hr"), prog.JoinT("ha"),
	)
	p.AddTest("T2",
		prog.Go(prog.ForkThread, "C::lateReader", "o", "hr"),
		prog.Go(prog.ForkThread, "C::adder", "o", "ha"),
		prog.JoinT("hr"), prog.JoinT("ha"),
	)
	p.Truth.Sync(prog.BK(prog.APISemWait), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(prog.APISemSet), trace.RoleRelease)
	return p
}

// unsyncedApp: the same shape with no synchronization at all — a genuine
// thread-safety violation candidate.
func unsyncedApp() *prog.Program {
	p := prog.New("tsvd-unsynced", "TSVDUnsynced")
	p.AddMethod("C::adder", prog.CpJ(300, 0.5), prog.ListAdd("list"))
	p.AddMethod("C::reader", prog.CpJ(300, 0.5), prog.ListRead("list"))
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::reader", "o", "hr"),
		prog.Go(prog.ForkThread, "C::adder", "o", "ha"),
		prog.JoinT("hr"), prog.JoinT("ha"),
	)
	p.Truth.RacyFields["System.Collections.Generic.List"] = true
	return p
}

func TestSyncedPairDetected(t *testing.T) {
	app := syncedApp()
	res, err := core.Infer(context.Background(), app, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Analyze(context.Background(), app, res.SyncKeys(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Conflicting) == 0 {
		t.Fatal("no conflicting pairs found; workload broken")
	}
	if len(out.SherSynced) == 0 {
		t.Errorf("SherLock enhancement found no synced pairs: %+v", out)
	}
	if len(out.TSVDSynced) == 0 {
		t.Errorf("TSVD propagation found no synced pairs: %+v", out)
	}
}

func TestUnsyncedPairNotSynced(t *testing.T) {
	app := unsyncedApp()
	// No inferred syncs: SherLock_dr sees the collection race.
	out, err := Analyze(context.Background(), app, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Conflicting) == 0 {
		t.Fatal("no conflicting pairs found; workload broken")
	}
	if len(out.SherSynced) != 0 {
		t.Errorf("unsynchronized pair claimed synced by enhancement: %+v", out.SherSynced)
	}
	if len(out.TSVDSynced) != 0 {
		t.Errorf("unsynchronized pair claimed synced by TSVD: %+v", out.TSVDSynced)
	}
}

// The paper's headline for this experiment: SherLock's inferred
// synchronizations prove at least as many pairs synchronized as TSVD's
// quick heuristic.
func TestSherLockEnhancesTSVD(t *testing.T) {
	app := syncedApp()
	res, err := core.Infer(context.Background(), app, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Analyze(context.Background(), app, res.SyncKeys(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SherSynced) < len(out.TSVDSynced) {
		t.Errorf("enhancement weaker than TSVD alone: sher=%d tsvd=%d",
			len(out.SherSynced), len(out.TSVDSynced))
	}
}
