package window

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sherlock/internal/trace"
)

// uidWindow builds a window carrying a checkpoint-style UID
// "<trace>:<ordinal>". racy windows have a lone read on the release side.
func uidWindow(traceKey string, ord int, pair PairID, racy bool) Window {
	relKind := "write"
	if racy {
		relKind = "read"
	}
	return Window{
		App: "a", Test: "t", Pair: pair, UID: fmt.Sprintf("%s:%d", traceKey, ord),
		ThreadA: 0, ThreadB: 1, TA: int64(ord * 100), TB: int64(ord*100 + 50),
		RelEvents: []CandEvent{{Key: trace.Key(fmt.Sprintf("%s:C::f%d", relKind, ord%3)), Time: int64(ord*100 + 10)}},
		AcqEvents: []CandEvent{{Key: trace.Key(fmt.Sprintf("read:C::g%d", ord%2)), Time: int64(ord*100 + 20)}},
	}
}

// stateOf snapshots every externally observable piece of accumulator state.
func stateOf(o *Observations) map[string]any {
	uids := make([]string, len(o.Windows))
	for i := range o.Windows {
		uids[i] = o.Windows[i].UID
	}
	occ := map[trace.Key][2]float64{}
	for k := range o.occSum {
		occ[k] = [2]float64{float64(o.occSum[k]), float64(o.winCnt[k])}
	}
	racy := map[PairID]bool{}
	for p := range o.RacyPairs {
		racy[p] = true
	}
	pp := map[PairID]int{}
	for p, n := range o.perPair {
		if n != 0 {
			pp[p] = n
		}
	}
	return map[string]any{"uids": uids, "occ": occ, "racy": racy, "perpair": pp}
}

// TestCanonicalAdmissionOrderIndependent: feeding the same window set in
// any order through AddWindowsCanonical must land on the identical state a
// sequential AddWindows over canonical (sorted-UID) order produces — with
// more windows than the per-pair cap so eviction paths run, and with racy
// windows so RacyPairs recomputation runs.
func TestCanonicalAdmissionOrderIndependent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerPairCap = 3

	// Three "traces"; ordinals up to 12 so the lone pair overflows the cap
	// 4x over. Trace keys chosen so plain string order of "t10:..." vs
	// "t2:..." would NOT matter, but ordinals 2 vs 10 within a trace would
	// mis-sort under plain string compare — exercising numeric UID order.
	pair := PairID{First: 1, Second: 2}
	other := PairID{First: 3, Second: 4}
	var all []Window
	for _, tk := range []string{"ta", "tb", "tc"} {
		for ord := 0; ord < 12; ord++ {
			all = append(all, uidWindow(tk, ord, pair, ord == 11))
		}
		all = append(all, uidWindow(tk, 12, other, false))
	}

	// Reference: sequential first-come admission over canonical order.
	sorted := append([]Window(nil), all...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && canonicalUIDLess(sorted[j].UID, sorted[j-1].UID); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	ref := NewObservations(cfg)
	ref.AddWindows(sorted)
	want := stateOf(ref)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		shuffled := append([]Window(nil), all...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		o := NewObservations(cfg)
		// Deliver in two batches to exercise repeated folding.
		cut := rng.Intn(len(shuffled))
		o.AddWindowsCanonical(shuffled[:cut])
		o.AddWindowsCanonical(shuffled[cut:])
		if got := stateOf(o); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: canonical state diverged\n got: %v\nwant: %v", trial, got, want)
		}
	}

	// Canonical admission over already-sorted input must equal AddWindows
	// bit for bit too (the fast path a full sorted replay takes).
	inOrder := NewObservations(cfg)
	inOrder.AddWindowsCanonical(sorted)
	if got := stateOf(inOrder); !reflect.DeepEqual(got, want) {
		t.Fatalf("in-order canonical state differs from AddWindows:\n got: %v\nwant: %v", got, want)
	}
}

// TestCanonicalUIDOrder pins the numeric-ordinal compare: ordinal 10 sorts
// after ordinal 2, and malformed UIDs fall back to string order.
func TestCanonicalUIDOrder(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"k:2", "k:10", true},
		{"k:10", "k:2", false},
		{"a:9", "b:1", true},
		{"k:1", "k:1", false},
		{"plain", "k:1", true}, // malformed → string order ("plain" > "k:1" is false... )
	}
	// Recompute the last case honestly: "plain" vs "k:1" under string order.
	cases[4].want = "plain" < "k:1"
	for _, c := range cases {
		if got := canonicalUIDLess(c.a, c.b); got != c.want {
			t.Errorf("canonicalUIDLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
