package window

import (
	"math/rand"
	"testing"

	"sherlock/internal/trace"
)

// capContentionTrace spreads conflicting accesses over many addresses that
// all collapse onto ONE static pair, so the shared PerPairCap budget binds
// and the address iteration order decides which conflicts are selected.
// Before FindConflicts sorted its address walk, this trace produced a
// different surviving set on (almost) every run.
func capContentionTrace() *trace.Trace {
	tr := &trace.Trace{App: "det", Test: "t"}
	for a := 1; a <= 30; a++ {
		base := int64(a * 1000)
		w := ev(base+10, 0, trace.KindWrite, "C::x", uint64(a))
		w.Site = 7
		r := ev(base+20, 1, trace.KindRead, "C::x", uint64(a))
		r.Site = 8
		tr.Events = append(tr.Events, w, r)
	}
	return tr
}

// sameConflict compares conflicts by their identifying event fields
// (trace.Event itself is not comparable).
func sameConflict(a, b Conflict) bool {
	id := func(e trace.Event) [4]int64 {
		return [4]int64{e.Time, int64(e.Thread), int64(e.Site), int64(e.Addr)}
	}
	return id(a.A) == id(b.A) && id(a.B) == id(b.B)
}

// TestFindConflictsDeterministic is the regression test for the
// nondeterministic byAddr map walk: 20 extractions of the same trace must
// select the identical conflict sequence, even with the cap binding.
func TestFindConflictsDeterministic(t *testing.T) {
	tr := capContentionTrace()
	cfg := DefaultConfig()
	cfg.PerPairCap = 5
	first := FindConflicts(tr, cfg)
	if len(first) != cfg.PerPairCap {
		t.Fatalf("cap must bind for this test: got %d conflicts, want %d", len(first), cfg.PerPairCap)
	}
	// With a sorted address walk, the lowest addresses win the budget.
	for i, c := range first {
		if c.A.Addr != uint64(i+1) {
			t.Fatalf("conflict %d at addr %d, want %d (sorted address order)", i, c.A.Addr, i+1)
		}
	}
	for run := 1; run < 20; run++ {
		cs := FindConflicts(tr, cfg)
		if len(cs) != len(first) {
			t.Fatalf("run %d: %d conflicts, first run had %d", run, len(cs), len(first))
		}
		for i := range cs {
			if !sameConflict(cs[i], first[i]) {
				t.Fatalf("run %d: conflict %d = %+v, first run had %+v", run, i, cs[i], first[i])
			}
		}
	}
}

// TestFindConflictsDeterministicRandomTrace repeats the check on a bigger
// randomized trace where many pairs contend for their caps.
func TestFindConflictsDeterministicRandomTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := &trace.Trace{App: "det", Test: "t"}
	tm := int64(0)
	for i := 0; i < 2000; i++ {
		tm += int64(1 + rng.Intn(20))
		acc := trace.AccRead
		kind := trace.KindRead
		if rng.Intn(2) == 0 {
			acc, kind = trace.AccWrite, trace.KindWrite
		}
		tr.Events = append(tr.Events, trace.Event{
			Time: tm, Thread: rng.Intn(4), Kind: kind,
			Name: "C::x", Addr: uint64(1 + rng.Intn(50)), Site: 1 + rng.Intn(6), Acc: acc,
		})
	}
	cfg := DefaultConfig()
	cfg.PerPairCap = 3
	first := FindConflicts(tr, cfg)
	if len(first) == 0 {
		t.Fatal("random trace produced no conflicts; test is vacuous")
	}
	for run := 1; run < 20; run++ {
		cs := FindConflicts(tr, cfg)
		if len(cs) != len(first) {
			t.Fatalf("run %d: %d conflicts, first run had %d", run, len(cs), len(first))
		}
		for i := range cs {
			if !sameConflict(cs[i], first[i]) {
				t.Fatalf("run %d: conflict %d differs", run, i)
			}
		}
	}
}

// TestObservationsClone checks Clone independence: mutating the clone (or
// the original) leaves the other's statistics and windows untouched.
func TestObservationsClone(t *testing.T) {
	o := NewObservations(DefaultConfig())
	o.AddWindows([]Window{{
		Pair:      PairID{First: 1, Second: 2},
		RelEvents: []CandEvent{{Key: trace.KeyFor(trace.KindWrite, "C::x"), Time: 1}},
		AcqEvents: []CandEvent{{Key: trace.KeyFor(trace.KindRead, "C::x"), Time: 2}},
	}})
	k := trace.KeyFor(trace.KindWrite, "C::x")
	c := o.Clone()
	if len(c.Windows) != 1 || c.AvgOccurrence(k) != o.AvgOccurrence(k) {
		t.Fatal("clone does not match original")
	}
	c.AddWindows([]Window{{
		Pair:      PairID{First: 3, Second: 4},
		RelEvents: []CandEvent{{Key: k, Time: 1}, {Key: k, Time: 2}},
		AcqEvents: []CandEvent{{Key: trace.KeyFor(trace.KindRead, "C::x"), Time: 3}},
	}})
	if len(o.Windows) != 1 {
		t.Fatalf("original grew with the clone: %d windows", len(o.Windows))
	}
	if o.AvgOccurrence(k) != 1 {
		t.Fatalf("original stats mutated by clone: avgOcc = %v", o.AvgOccurrence(k))
	}
	if c.AvgOccurrence(k) <= 1 {
		t.Fatalf("clone stats did not accumulate: avgOcc = %v", c.AvgOccurrence(k))
	}
}
