// Indexed window extraction: BuildWindows batches what BuildWindow does one
// conflict at a time. A per-thread time-sorted index turns each window into
// two binary searches plus an output copy, so extracting W windows from a
// trace of N events costs O(N + W·(log N + K)) for window size K instead of
// BuildWindow's O(W·N). App-1's traces (thousands of events, hundreds of
// conflicts per run) make this the Observer's hot path.
package window

import (
	"sort"

	"sherlock/internal/trace"
)

// threadIndex holds one thread's candidate events in time order.
type threadIndex struct {
	times []int64
	cands []CandEvent
}

// Index is a reusable per-trace acceleration structure.
type Index struct {
	app, test string
	threads   map[int]*threadIndex
}

// NewIndex builds the per-thread index of a trace. Events arrive
// time-ordered from the scheduler; out-of-order inputs are sorted
// defensively.
func NewIndex(tr *trace.Trace) *Index {
	idx := &Index{app: tr.App, test: tr.Test, threads: map[int]*threadIndex{}}
	for i := range tr.Events {
		e := &tr.Events[i]
		ti, ok := idx.threads[e.Thread]
		if !ok {
			ti = &threadIndex{}
			idx.threads[e.Thread] = ti
		}
		ti.times = append(ti.times, e.Time)
		ti.cands = append(ti.cands, CandEvent{Key: trace.EventKey(e), Time: e.Time})
	}
	for _, ti := range idx.threads {
		if !sort.SliceIsSorted(ti.cands, func(i, j int) bool { return ti.cands[i].Time < ti.cands[j].Time }) {
			sort.SliceStable(ti.cands, func(i, j int) bool { return ti.cands[i].Time < ti.cands[j].Time })
			for i, c := range ti.cands {
				ti.times[i] = c.Time
			}
		}
	}
	return idx
}

// between returns the thread's candidate events with lo < Time < hi, as a
// view over the index's backing array — no copy. Callers must treat the
// slice as read-only (the package-wide contract on window event slices);
// overlapping windows share the same backing elements.
func (ti *threadIndex) between(lo, hi int64) []CandEvent {
	if ti == nil {
		return nil
	}
	start := sort.Search(len(ti.times), func(i int) bool { return ti.times[i] > lo })
	end := sort.Search(len(ti.times), func(i int) bool { return ti.times[i] >= hi })
	if start >= end {
		return nil
	}
	return ti.cands[start:end:end]
}

// Window extracts one conflict's window using the index. Equivalent to
// BuildWindow on the same trace, except the event slices are views over the
// index (read-only, possibly shared between overlapping windows) rather
// than fresh copies.
func (idx *Index) Window(c Conflict) Window {
	return Window{
		App: idx.app, Test: idx.test,
		Pair:      PairID{First: c.A.Site, Second: c.B.Site},
		ThreadA:   c.A.Thread,
		ThreadB:   c.B.Thread,
		TA:        c.A.Time,
		TB:        c.B.Time,
		RelEvents: idx.threads[c.A.Thread].between(c.A.Time, c.B.Time),
		AcqEvents: idx.threads[c.B.Thread].between(c.A.Time, c.B.Time),
	}
}

// BuildWindows extracts every conflict's window from tr in one pass over
// the trace plus two binary searches per conflict.
func BuildWindows(tr *trace.Trace, conflicts []Conflict) []Window {
	if len(conflicts) == 0 {
		return nil
	}
	idx := NewIndex(tr)
	out := make([]Window, 0, len(conflicts))
	for _, c := range conflicts {
		out = append(out, idx.Window(c))
	}
	return out
}
