package window

import (
	"fmt"
	"math"
	"testing"

	"sherlock/internal/stats"
	"sherlock/internal/trace"
)

// syntheticWindow builds a non-racy window for pair with one release and
// one acquire candidate, keyed so distinct i values yield distinct keys.
func syntheticWindow(pair PairID, i int) Window {
	return Window{
		App: "a", Test: "t", Pair: pair,
		ThreadA: 0, ThreadB: 1, TA: int64(100 * i), TB: int64(100*i + 50),
		RelEvents: []CandEvent{{Key: trace.Key(fmt.Sprintf("write:C::f%d", i)), Time: int64(100*i + 10)}},
		AcqEvents: []CandEvent{{Key: trace.Key(fmt.Sprintf("read:C::f%d", i)), Time: int64(100*i + 20)}},
	}
}

// TestObservationsMergeMatchesDirectAdd: merging two accumulators must be
// observationally identical to adding every window to one accumulator in
// the same order.
func TestObservationsMergeMatchesDirectAdd(t *testing.T) {
	cfg := DefaultConfig()
	var first, second []Window
	for i := 0; i < 4; i++ {
		first = append(first, syntheticWindow(PairID{First: 1, Second: 2}, i))
	}
	for i := 4; i < 7; i++ {
		second = append(second, syntheticWindow(PairID{First: 3, Second: 4}, i))
	}
	// A racy window (release side is a lone read) in the second shard: the
	// merge must carry the RacyPairs observation over.
	racy := Window{
		App: "a", Test: "t", Pair: PairID{First: 5, Second: 6},
		RelEvents: []CandEvent{{Key: trace.Key("read:C::r"), Time: 1}},
		AcqEvents: []CandEvent{{Key: trace.Key("read:C::r2"), Time: 2}},
	}
	second = append(second, racy)

	direct := NewObservations(cfg)
	direct.AddWindows(first)
	direct.AddWindows(second)

	o1 := NewObservations(cfg)
	o1.AddWindows(first)
	o2 := NewObservations(cfg)
	o2.AddWindows(second)
	o1.Merge(o2)

	if len(o1.Windows) != len(direct.Windows) {
		t.Fatalf("windows after merge = %d, direct = %d", len(o1.Windows), len(direct.Windows))
	}
	if !o1.RacyPairs[racy.Pair] {
		t.Error("racy pair lost in merge")
	}
	for i := 0; i < 7; i++ {
		for _, k := range []trace.Key{
			trace.Key(fmt.Sprintf("write:C::f%d", i)),
			trace.Key(fmt.Sprintf("read:C::f%d", i)),
		} {
			if got, want := o1.AvgOccurrence(k), direct.AvgOccurrence(k); got != want {
				t.Errorf("AvgOccurrence(%s) = %g after merge, direct = %g", k, got, want)
			}
		}
	}
}

// TestObservationsMergeRespectsPerPairCap: the cross-accumulator per-pair
// cap admits windows exactly as if they had been added directly.
func TestObservationsMergeRespectsPerPairCap(t *testing.T) {
	cfg := DefaultConfig()
	pair := PairID{First: 9, Second: 10}

	o1 := NewObservations(cfg)
	for i := 0; i < cfg.PerPairCap; i++ {
		o1.AddWindows([]Window{syntheticWindow(pair, i)})
	}
	o2 := NewObservations(cfg)
	for i := 0; i < 5; i++ {
		o2.AddWindows([]Window{syntheticWindow(pair, 100+i)})
	}
	o1.Merge(o2)
	if len(o1.Windows) != cfg.PerPairCap {
		t.Fatalf("merge admitted %d windows for one pair, cap is %d", len(o1.Windows), cfg.PerPairCap)
	}
}

// TestObservationsMergeStatsAndCounts: duration statistics combine via
// exact moment merging; library APIs union; run counts sum.
func TestObservationsMergeStatsAndCounts(t *testing.T) {
	cfg := DefaultConfig()
	o1 := NewObservations(cfg)
	o2 := NewObservations(cfg)

	w1 := &stats.Moments{}
	for _, x := range []float64{100, 200, 300} {
		w1.Add(x)
	}
	w2 := &stats.Moments{}
	for _, x := range []float64{400, 500} {
		w2.Add(x)
	}
	o1.Durations["C::m"] = w1
	o2.Durations["C::m"] = w2
	o2.Durations["C::only2"] = func() *stats.Moments { w := &stats.Moments{}; w.Add(7); return w }()
	o1.LibAPIs["Lib::A"] = true
	o2.LibAPIs["Lib::B"] = true
	o1.Runs, o2.Runs = 3, 2

	o1.Merge(o2)

	m := o1.Durations["C::m"]
	if m.N() != 5 {
		t.Fatalf("merged sample count = %d, want 5", m.N())
	}
	if math.Abs(m.Mean()-300) > 1e-9 {
		t.Errorf("merged mean = %g, want 300", m.Mean())
	}
	if o1.Durations["C::only2"].N() != 1 {
		t.Error("method present only in o2 lost in merge")
	}
	if !o1.LibAPIs["Lib::A"] || !o1.LibAPIs["Lib::B"] {
		t.Error("library API union incomplete")
	}
	if o1.Runs != 5 {
		t.Errorf("Runs = %d, want 5", o1.Runs)
	}

	// Merging nil is a no-op.
	o1.Merge(nil)
	if o1.Runs != 5 {
		t.Error("Merge(nil) changed state")
	}
}
