// Package window implements the Observer's post-processing (paper Section
// 4.1): finding conflicting-access pairs in a trace, filtering them with the
// physical-time Near parameter, extracting acquire/release windows, capping
// windows per static location pair, spotting data-race observations, and
// accumulating the statistics (occurrence counts, method-duration CVs) the
// Solver's hypotheses consume.
package window

import (
	"sort"
	"strconv"
	"strings"

	"sherlock/internal/stats"
	"sherlock/internal/trace"
)

// Config tunes window extraction.
type Config struct {
	// Near is the physical-time filter (virtual ns): conflicting accesses
	// farther apart than this are ignored (paper default 1 s wall clock; 1 ms
	// virtual here — the ratios to operation costs match).
	Near int64
	// PerPairCap bounds the number of windows a single static location pair
	// may contribute, across all runs (paper: 15).
	PerPairCap int
	// UseUnsafeAPIs includes thread-unsafe library calls (List.Add, …) as
	// conflicting accesses. This is the paper's optional 14-class API list;
	// turning it off loses only a few percent of inferences.
	UseUnsafeAPIs bool
}

// DefaultConfig mirrors the paper's defaults at virtual-time scale.
func DefaultConfig() Config {
	return Config{Near: 1_000_000, PerPairCap: 15, UseUnsafeAPIs: true}
}

// PairID identifies a static conflicting-location pair, ordered
// first-executed → second-executed.
type PairID struct {
	First, Second int // statement site ids
}

// CandEvent is one candidate operation occurrence inside a window.
type CandEvent struct {
	Key  trace.Key
	Time int64
}

// Window is one acquire/release window observation (paper Figure 2a): a
// conflicting pair (a at TA in ThreadA, b at TB in ThreadB) plus the
// operations that executed between them in each of the two threads.
//
// RelEvents and AcqEvents are read-only once a Window is built: the
// indexed extractor hands out views over a shared per-trace array, so
// consumers (and refiners like the Perturber) must build new slices
// instead of mutating in place.
type Window struct {
	App, Test string
	// UID, when non-empty, is a stable identity for this window across
	// encodings — typically derived from the owning trace's content address
	// plus the window's ordinal within that trace. The solver names a
	// window's LP rows by UID when present (falling back to the absolute
	// accumulator index), which keeps row names — and with them warm-basis
	// mapping — stable even when later encodings insert windows from other
	// traces ahead of this one. Empty for windows built live by the engine.
	UID  string
	Pair PairID
	ThreadA   int
	ThreadB   int
	TA, TB    int64
	// RelEvents are operations from ThreadA in (TA, TB): release candidates.
	RelEvents []CandEvent
	// AcqEvents are operations from ThreadB in (TA, TB): acquire candidates.
	AcqEvents []CandEvent
}

// UniqueRel returns each distinct release-candidate key with its occurrence
// count in this window. Only one probability subtraction per distinct key is
// allowed in the Mostly-Protected term (paper Section 4.2), so callers use
// the key set; the counts feed the Synchronizations-are-Rare penalty.
func (w *Window) UniqueRel() map[trace.Key]int { return uniq(w.RelEvents) }

// UniqueAcq is UniqueRel for the acquire side.
func (w *Window) UniqueAcq() map[trace.Key]int { return uniq(w.AcqEvents) }

func uniq(evs []CandEvent) map[trace.Key]int {
	m := make(map[trace.Key]int, len(evs))
	uniqInto(m, evs)
	return m
}

// uniqInto fills m — cleared first — with per-key occurrence counts,
// letting accumulation loops reuse one scratch map instead of allocating
// per window.
func uniqInto(m map[trace.Key]int, evs []CandEvent) {
	clear(m)
	for _, e := range evs {
		m[e.Key]++
	}
}

// RacyRelease reports whether the release side proves no release can
// protect the pair: the window is empty or every operation in it is a read
// (paper Section 4.3's data-race observation). Method operations never
// disqualify a window: a blocking call's before-event can precede the
// window even when the call itself is the synchronization, so only field
// accesses give the guarantee the paper requires.
func (w *Window) RacyRelease() bool {
	for _, e := range w.RelEvents {
		if e.Key.Kind() != trace.KindRead {
			return false
		}
	}
	return true
}

// RacyAcquire is RacyRelease for the acquire side: racy when empty or all
// writes.
func (w *Window) RacyAcquire() bool {
	for _, e := range w.AcqEvents {
		if e.Key.Kind() != trace.KindWrite {
			return false
		}
	}
	return true
}

// Racy reports whether this window is a data-race observation.
func (w *Window) Racy() bool { return w.RacyRelease() || w.RacyAcquire() }

// Conflict is one conflicting-access pair found in a trace.
type Conflict struct {
	A, B trace.Event // A executed first
}

// FindConflicts returns every conflicting-access pair in tr within near
// virtual ns: same address, different threads, at least one write, ordered
// A before B. Pairs per static location pair are capped by perPairCap to
// bound the quadratic blowup from loops (the Extractor applies its own
// cross-run cap later).
func FindConflicts(tr *trace.Trace, cfg Config) []Conflict {
	type acc struct {
		ev trace.Event
	}
	byAddr := map[uint64][]acc{}
	for _, e := range tr.Events {
		if !e.ConflictEligible() {
			continue
		}
		if e.Lib && !cfg.UseUnsafeAPIs {
			continue
		}
		byAddr[e.Addr] = append(byAddr[e.Addr], acc{ev: e})
	}
	// The per-pair cap below consumes a budget shared across addresses, so
	// the iteration order decides WHICH conflicts survive once a pair
	// exceeds the cap. Walk addresses in sorted order — ranging over the
	// map directly would make the selected set (and every inference
	// downstream of it) vary between identical runs.
	addrs := make([]uint64, 0, len(byAddr))
	for a := range byAddr {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var out []Conflict
	perPair := map[PairID]int{}
	for _, a := range addrs {
		evs := byAddr[a]
		// Events arrive time-ordered (trace is sorted).
		for j := 1; j < len(evs); j++ {
			b := evs[j].ev
			for i := j - 1; i >= 0; i-- {
				a := evs[i].ev
				if b.Time-a.Time > cfg.Near {
					break
				}
				if a.Thread == b.Thread {
					continue
				}
				if a.Acc != trace.AccWrite && b.Acc != trace.AccWrite {
					continue
				}
				pid := PairID{First: a.Site, Second: b.Site}
				if perPair[pid] >= cfg.PerPairCap {
					continue
				}
				perPair[pid]++
				out = append(out, Conflict{A: a, B: b})
			}
		}
	}
	return out
}

// BuildWindow extracts the acquire/release window of one conflict from the
// trace: all operations strictly between the pair, split by thread.
func BuildWindow(tr *trace.Trace, c Conflict) Window {
	w := Window{
		App: tr.App, Test: tr.Test,
		Pair:    PairID{First: c.A.Site, Second: c.B.Site},
		ThreadA: c.A.Thread, ThreadB: c.B.Thread,
		TA: c.A.Time, TB: c.B.Time,
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Time <= c.A.Time || e.Time >= c.B.Time {
			continue
		}
		switch e.Thread {
		case c.A.Thread:
			w.RelEvents = append(w.RelEvents, CandEvent{Key: trace.EventKey(e), Time: e.Time})
		case c.B.Thread:
			w.AcqEvents = append(w.AcqEvents, CandEvent{Key: trace.EventKey(e), Time: e.Time})
		}
	}
	return w
}

// MethodDurations extracts per-method duration samples (virtual ns) from a
// trace by pairing Begin/End events per thread with a call stack. Library
// call sites pair the same way (they never interleave within a thread).
func MethodDurations(tr *trace.Trace) map[string][]float64 {
	type open struct {
		name string
		t    int64
	}
	stacks := map[int][]open{}
	out := map[string][]float64{}
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.KindBegin:
			stacks[e.Thread] = append(stacks[e.Thread], open{e.Name, e.Time})
		case trace.KindEnd:
			st := stacks[e.Thread]
			// Pop until the matching Begin (defensive against hidden
			// methods producing unbalanced logs).
			for len(st) > 0 {
				top := st[len(st)-1]
				st = st[:len(st)-1]
				if top.name == e.Name {
					out[e.Name] = append(out[e.Name], float64(e.Time-top.t))
					break
				}
			}
			stacks[e.Thread] = st
		}
	}
	return out
}

// Observations accumulates everything the Solver consumes, across runs
// (paper Section 4.3: no constraint or statistic from a previous run is
// thrown away).
type Observations struct {
	cfg Config

	Windows []Window
	// perPair counts windows per static pair across all runs (cap 15).
	perPair map[PairID]int

	// Durations tracks method-duration statistics per static method name.
	// Integer moments, not Welford: duration samples are integer-valued
	// virtual nanoseconds, and exact integer moments make the folded state
	// independent of sample arrival order — the property incremental
	// checkpoint folding needs to add only new traces' samples.
	Durations map[string]*stats.Moments

	// occSum / winCnt track, per candidate key, total occurrences across
	// windows and the number of windows it appeared in: their ratio is the
	// "average occurrence time" of Eq. 4.
	occSum map[trace.Key]int
	winCnt map[trace.Key]int

	// LibAPIs records static names seen as library call sites (Single-Role
	// constraint scope).
	LibAPIs map[string]bool

	// RacyPairs records static pairs with at least one data-race
	// observation; the Solver drops their Mostly-Protected terms.
	RacyPairs map[PairID]bool

	// Runs counts accumulated traces.
	Runs int

	// scratch is AddWindows' reusable per-window occurrence-count map.
	scratch map[trace.Key]int
}

// NewObservations returns an empty accumulator with the given config.
func NewObservations(cfg Config) *Observations {
	return &Observations{
		cfg:       cfg,
		perPair:   map[PairID]int{},
		Durations: map[string]*stats.Moments{},
		occSum:    map[trace.Key]int{},
		winCnt:    map[trace.Key]int{},
		LibAPIs:   map[string]bool{},
		RacyPairs: map[PairID]bool{},
	}
}

// Config returns the extraction configuration.
func (o *Observations) Config() Config { return o.cfg }

// AddWindows folds a set of (possibly Perturber-refined) windows into the
// accumulator, enforcing the cross-run per-pair cap and recording data-race
// observations.
func (o *Observations) AddWindows(ws []Window) {
	if o.scratch == nil {
		o.scratch = map[trace.Key]int{}
	}
	for _, w := range ws {
		if o.perPair[w.Pair] >= o.cfg.PerPairCap {
			continue
		}
		o.perPair[w.Pair]++
		if w.Racy() {
			o.RacyPairs[w.Pair] = true
		}
		o.Windows = append(o.Windows, w)
		// Map iteration order is irrelevant here: the updates commute.
		uniqInto(o.scratch, w.RelEvents)
		for k, n := range o.scratch {
			o.occSum[k] += n
			o.winCnt[k]++
		}
		uniqInto(o.scratch, w.AcqEvents)
		for k, n := range o.scratch {
			o.occSum[k] += n
			o.winCnt[k]++
		}
	}
}

// AddTraceStats folds per-trace statistics (durations, library API names)
// into the accumulator. Call once per trace, independent of windows.
func (o *Observations) AddTraceStats(tr *trace.Trace) {
	o.addDurations(MethodDurations(tr))
	for i := range tr.Events {
		if tr.Events[i].Lib {
			o.LibAPIs[tr.Events[i].Name] = true
		}
	}
	o.Runs++
}

// AddStats folds precomputed per-trace statistics — MethodDurations output
// and the trace's library-API name set — exactly as AddTraceStats would
// fold the trace they were extracted from, bit for bit: integer-moment
// accumulation is exactly commutative, so neither the map's iteration
// order nor the order traces are folded in can matter. Checkpoint replay
// (internal/core) uses this to rebuild an accumulator from stored extracts
// without re-decoding traces.
func (o *Observations) AddStats(durations map[string][]float64, libAPIs []string) {
	o.addDurations(durations)
	for _, api := range libAPIs {
		o.LibAPIs[api] = true
	}
	o.Runs++
}

func (o *Observations) addDurations(durations map[string][]float64) {
	for name, durs := range durations {
		w, ok := o.Durations[name]
		if !ok {
			w = &stats.Moments{}
			o.Durations[name] = w
		}
		for _, d := range durs {
			w.Add(d)
		}
	}
}

// Merge folds another accumulator into o: windows are replayed through the
// same admission path as AddWindows (so the cross-accumulator per-pair cap
// and data-race bookkeeping behave exactly as if every window had been
// added to o directly, in o2's order), duration statistics combine by
// exact integer-moment addition (bit-identical to having folded every
// sample directly, in any order), and library-API sets and run counts
// union/sum.
//
// Merging is order-sensitive in the same way AddWindows is: the per-pair
// cap admits the first windows seen, so merge partial accumulators in a
// deterministic order. Merge serves consumers combining independently
// collected observation sets (e.g. shards of an offline corpus).
func (o *Observations) Merge(o2 *Observations) {
	if o2 == nil {
		return
	}
	o.AddWindows(o2.Windows)
	for name, w2 := range o2.Durations {
		w, ok := o.Durations[name]
		if !ok {
			w = &stats.Moments{}
			o.Durations[name] = w
		}
		w.Merge(w2)
	}
	for api := range o2.LibAPIs {
		o.LibAPIs[api] = true
	}
	o.Runs += o2.Runs
}

// Clone returns an independent deep copy of the accumulator: mutating
// either afterwards leaves the other unchanged. Window event slices are
// shared — they are immutable under the package's no-mutation contract —
// so cloning per round (benchmark snapshots, what-if solves) stays cheap.
func (o *Observations) Clone() *Observations {
	c := NewObservations(o.cfg)
	c.Windows = append([]Window(nil), o.Windows...)
	for p, n := range o.perPair {
		c.perPair[p] = n
	}
	for name, w := range o.Durations {
		cw := *w
		c.Durations[name] = &cw
	}
	for k, n := range o.occSum {
		c.occSum[k] = n
	}
	for k, n := range o.winCnt {
		c.winCnt[k] = n
	}
	for api := range o.LibAPIs {
		c.LibAPIs[api] = true
	}
	for p := range o.RacyPairs {
		c.RacyPairs[p] = true
	}
	c.Runs = o.Runs
	return c
}

// ---------------------------------------------------------------------------
// Canonical (arrival-order-independent) accumulation
//
// AddWindows admits first-come: replaying the same windows in a different
// order can admit a different per-pair subset. Checkpoint folding
// (internal/core) instead needs an accumulator whose state is a function
// of the SET of windows offered, so that newly arrived traces can be
// folded into a cached accumulator without replaying the whole corpus.
// AddWindowsCanonical provides that: windows are kept sorted by canonical
// UID order, and the per-pair cap always admits the canonically-smallest
// PerPairCap windows offered so far — evicting a previously admitted
// window when a canonically earlier one arrives late. When windows arrive
// already in canonical order (a full sorted replay), the admitted set,
// the window order, and every derived statistic are bit-identical to
// AddWindows.
// ---------------------------------------------------------------------------

// canonicalUIDLess orders window UIDs of the "<trace-key>:<ordinal>" form
// by (key, numeric ordinal). A plain string compare would put ordinal 10
// before ordinal 2; splitting at the last colon and comparing the ordinal
// numerically matches the order a sorted-by-key replay offers windows in.
// UIDs that do not parse fall back to plain string order.
func canonicalUIDLess(a, b string) bool {
	pa, oa, oka := splitUID(a)
	pb, ob, okb := splitUID(b)
	if oka && okb {
		if pa != pb {
			return pa < pb
		}
		return oa < ob
	}
	return a < b
}

// splitUID splits "<prefix>:<ordinal>" at the last colon.
func splitUID(uid string) (prefix string, ord int, ok bool) {
	i := strings.LastIndexByte(uid, ':')
	if i < 0 || i == len(uid)-1 {
		return "", 0, false
	}
	n, err := strconv.Atoi(uid[i+1:])
	if err != nil || n < 0 {
		return "", 0, false
	}
	return uid[:i], n, true
}

// AddWindowsCanonical folds windows under canonical admission (see above).
// Every window must carry a UID; canonical order is only meaningful across
// identified windows. Mixing AddWindows and AddWindowsCanonical on one
// accumulator is unsupported.
func (o *Observations) AddWindowsCanonical(ws []Window) {
	if o.scratch == nil {
		o.scratch = map[trace.Key]int{}
	}
	for i := range ws {
		o.insertCanonical(&ws[i])
	}
}

// insertCanonical admits one window at its canonical position, evicting
// the pair's canonically-last admitted window if the pair is at cap and w
// precedes it.
func (o *Observations) insertCanonical(w *Window) {
	pos := sort.Search(len(o.Windows), func(i int) bool {
		return canonicalUIDLess(w.UID, o.Windows[i].UID)
	})
	if o.perPair[w.Pair] >= o.cfg.PerPairCap {
		last := -1
		for i := len(o.Windows) - 1; i >= 0; i-- {
			if o.Windows[i].Pair == w.Pair {
				last = i
				break
			}
		}
		if last < pos {
			// Every admitted window of the pair canonically precedes w:
			// under canonical admission w would never have been admitted.
			return
		}
		o.evictAt(last)
	}
	o.Windows = append(o.Windows, Window{})
	copy(o.Windows[pos+1:], o.Windows[pos:])
	o.Windows[pos] = *w
	o.perPair[w.Pair]++
	if w.Racy() {
		o.RacyPairs[w.Pair] = true
	}
	uniqInto(o.scratch, w.RelEvents)
	for k, n := range o.scratch {
		o.occSum[k] += n
		o.winCnt[k]++
	}
	uniqInto(o.scratch, w.AcqEvents)
	for k, n := range o.scratch {
		o.occSum[k] += n
		o.winCnt[k]++
	}
}

// evictAt removes the admitted window at index i, reversing its
// contribution to every derived statistic.
func (o *Observations) evictAt(i int) {
	w := o.Windows[i]
	copy(o.Windows[i:], o.Windows[i+1:])
	o.Windows = o.Windows[:len(o.Windows)-1]
	o.perPair[w.Pair]--
	uniqInto(o.scratch, w.RelEvents)
	for k, n := range o.scratch {
		o.decOcc(k, n)
	}
	uniqInto(o.scratch, w.AcqEvents)
	for k, n := range o.scratch {
		o.decOcc(k, n)
	}
	if w.Racy() {
		o.recomputeRacy(w.Pair)
	}
}

func (o *Observations) decOcc(k trace.Key, n int) {
	o.occSum[k] -= n
	o.winCnt[k]--
	if o.winCnt[k] <= 0 {
		delete(o.winCnt, k)
		delete(o.occSum, k)
	}
}

// recomputeRacy re-derives the pair's data-race flag from the currently
// admitted windows (an eviction may have removed the only racy witness).
func (o *Observations) recomputeRacy(p PairID) {
	for i := range o.Windows {
		if o.Windows[i].Pair == p && o.Windows[i].Racy() {
			o.RacyPairs[p] = true
			return
		}
	}
	delete(o.RacyPairs, p)
}

// AvgOccurrence returns the average number of times key occurs in the
// windows it appears in (Eq. 4's coefficient input); 0 if never seen.
func (o *Observations) AvgOccurrence(k trace.Key) float64 {
	if o.winCnt[k] == 0 {
		return 0
	}
	return float64(o.occSum[k]) / float64(o.winCnt[k])
}

// CVPercentiles returns, for every method with duration samples, the
// percentile of its duration CV among all observed methods (Eq. 5).
func (o *Observations) CVPercentiles() map[string]float64 {
	names := make([]string, 0, len(o.Durations))
	cvs := make([]float64, 0, len(o.Durations))
	for name, w := range o.Durations {
		names = append(names, name)
		cvs = append(cvs, w.CV())
	}
	ps := stats.Percentiles(cvs)
	out := make(map[string]float64, len(names))
	for i, name := range names {
		out[name] = ps[i]
	}
	return out
}

// ActiveWindows returns the accumulated windows whose static pair has no
// data-race observation; only these contribute Mostly-Protected terms.
func (o *Observations) ActiveWindows() []Window {
	out := make([]Window, 0, len(o.Windows))
	for _, w := range o.Windows {
		if o.RacyPairs[w.Pair] {
			continue
		}
		out = append(out, w)
	}
	return out
}
