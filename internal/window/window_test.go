package window

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sherlock/internal/trace"
)

// ev builds a trace event tersely.
func ev(t int64, th int, kind trace.Kind, name string, addr uint64) trace.Event {
	acc := trace.AccNone
	switch kind {
	case trace.KindRead:
		acc = trace.AccRead
	case trace.KindWrite:
		acc = trace.AccWrite
	}
	return trace.Event{Time: t, Thread: th, Kind: kind, Name: name, Addr: addr, Site: int(addr)*100 + int(t%97), Acc: acc}
}

func mkTrace(events ...trace.Event) *trace.Trace {
	return &trace.Trace{App: "a", Test: "t", Events: events}
}

func TestFindConflictsBasics(t *testing.T) {
	tr := mkTrace(
		ev(100, 0, trace.KindWrite, "C::x", 1),
		ev(200, 1, trace.KindRead, "C::x", 1),
		ev(300, 1, trace.KindRead, "C::y", 2), // different address: no pair
		ev(400, 0, trace.KindRead, "C::x", 1), // read-read with 200: no pair
	)
	cfg := DefaultConfig()
	cs := FindConflicts(tr, cfg)
	if len(cs) != 1 {
		t.Fatalf("conflicts = %d, want 1 (write@100 → read@200)", len(cs))
	}
	if cs[0].A.Time != 100 || cs[0].B.Time != 200 {
		t.Errorf("wrong pair: %v", cs[0])
	}
}

func TestFindConflictsSameThreadExcluded(t *testing.T) {
	tr := mkTrace(
		ev(100, 0, trace.KindWrite, "C::x", 1),
		ev(200, 0, trace.KindRead, "C::x", 1),
	)
	if cs := FindConflicts(tr, DefaultConfig()); len(cs) != 0 {
		t.Fatalf("same-thread accesses must not conflict, got %d", len(cs))
	}
}

func TestFindConflictsNearFilter(t *testing.T) {
	tr := mkTrace(
		ev(100, 0, trace.KindWrite, "C::x", 1),
		ev(100+2_000_000, 1, trace.KindRead, "C::x", 1), // 2 ms later
	)
	cfg := DefaultConfig() // Near = 1 ms
	if cs := FindConflicts(tr, cfg); len(cs) != 0 {
		t.Fatal("pair outside Near must be filtered")
	}
	cfg.Near = 3_000_000
	if cs := FindConflicts(tr, cfg); len(cs) != 1 {
		t.Fatal("pair inside enlarged Near must be found")
	}
}

func TestFindConflictsUnsafeAPIs(t *testing.T) {
	add := trace.Event{Time: 100, Thread: 0, Kind: trace.KindBegin,
		Name: "List::Add", Addr: 5, Site: 1, Lib: true, Unsafe: true, Acc: trace.AccWrite}
	get := trace.Event{Time: 200, Thread: 1, Kind: trace.KindBegin,
		Name: "List::get_Item", Addr: 5, Site: 2, Lib: true, Unsafe: true, Acc: trace.AccRead}
	tr := mkTrace(add, get)
	cfg := DefaultConfig()
	if cs := FindConflicts(tr, cfg); len(cs) != 1 {
		t.Fatal("unsafe API pair should conflict when UseUnsafeAPIs")
	}
	cfg.UseUnsafeAPIs = false
	if cs := FindConflicts(tr, cfg); len(cs) != 0 {
		t.Fatal("unsafe API pair must be ignored when the API list is off")
	}
}

func TestFindConflictsPerPairCap(t *testing.T) {
	var events []trace.Event
	// 40 write/read alternations at the same two static sites.
	for i := 0; i < 40; i++ {
		w := ev(int64(i*100+10), 0, trace.KindWrite, "C::x", 1)
		w.Site = 7
		r := ev(int64(i*100+60), 1, trace.KindRead, "C::x", 1)
		r.Site = 8
		events = append(events, w, r)
	}
	cfg := DefaultConfig()
	cs := FindConflicts(mkTrace(events...), cfg)
	count := map[PairID]int{}
	for _, c := range cs {
		count[PairID{c.A.Site, c.B.Site}]++
	}
	for pid, n := range count {
		if n > cfg.PerPairCap {
			t.Errorf("pair %v produced %d conflicts, cap is %d", pid, n, cfg.PerPairCap)
		}
	}
}

func TestBuildWindowSplitsByThread(t *testing.T) {
	a := ev(100, 0, trace.KindWrite, "C::x", 1)
	b := ev(500, 1, trace.KindRead, "C::x", 1)
	tr := mkTrace(
		a,
		ev(150, 0, trace.KindWrite, "C::flag", 2),  // release cand
		ev(200, 1, trace.KindRead, "C::flag", 2),   // acquire cand
		ev(300, 2, trace.KindWrite, "C::other", 3), // third thread: neither
		ev(600, 0, trace.KindWrite, "C::late", 4),  // after TB: excluded
		b,
	)
	w := BuildWindow(tr, Conflict{A: a, B: b})
	if len(w.RelEvents) != 1 || w.RelEvents[0].Key != trace.KeyFor(trace.KindWrite, "C::flag") {
		t.Errorf("release events = %v", w.RelEvents)
	}
	if len(w.AcqEvents) != 1 || w.AcqEvents[0].Key != trace.KeyFor(trace.KindRead, "C::flag") {
		t.Errorf("acquire events = %v", w.AcqEvents)
	}
}

func TestWindowRacyRules(t *testing.T) {
	// Empty both sides: racy.
	w := Window{}
	if !w.Racy() {
		t.Error("empty window must be racy")
	}
	// Release side all reads: racy.
	w = Window{
		RelEvents: []CandEvent{{Key: trace.KeyFor(trace.KindRead, "C::a")}},
		AcqEvents: []CandEvent{{Key: trace.KeyFor(trace.KindRead, "C::a")}},
	}
	if !w.RacyRelease() || w.RacyAcquire() {
		t.Error("all-read release side is racy; read on acquire side is fine")
	}
	// Method events never disqualify: a blocked call's before-event can
	// predate the window, so presence of an End on the acquire side or a
	// Begin on the release side blocks the racy conclusion.
	w = Window{
		RelEvents: []CandEvent{{Key: trace.KeyFor(trace.KindBegin, "C::m")}},
		AcqEvents: []CandEvent{{Key: trace.KeyFor(trace.KindEnd, "C::m")}},
	}
	if w.Racy() {
		t.Error("method events must not trigger data-race observations")
	}
	// Acquire side all writes: racy.
	w = Window{
		RelEvents: []CandEvent{{Key: trace.KeyFor(trace.KindWrite, "C::a")}},
		AcqEvents: []CandEvent{{Key: trace.KeyFor(trace.KindWrite, "C::b")}},
	}
	if !w.RacyAcquire() || w.RacyRelease() {
		t.Error("all-write acquire side is racy; write on release side is fine")
	}
}

func TestUniqueCounts(t *testing.T) {
	k := trace.KeyFor(trace.KindRead, "C::f")
	w := Window{AcqEvents: []CandEvent{{Key: k}, {Key: k}, {Key: k}}}
	if got := w.UniqueAcq()[k]; got != 3 {
		t.Errorf("occurrence count = %d, want 3", got)
	}
	if len(w.UniqueAcq()) != 1 {
		t.Error("unique keys must deduplicate")
	}
}

func TestMethodDurations(t *testing.T) {
	tr := mkTrace(
		trace.Event{Time: 100, Thread: 0, Kind: trace.KindBegin, Name: "C::outer"},
		trace.Event{Time: 150, Thread: 0, Kind: trace.KindBegin, Name: "C::inner"},
		trace.Event{Time: 250, Thread: 0, Kind: trace.KindEnd, Name: "C::inner"},
		trace.Event{Time: 400, Thread: 0, Kind: trace.KindEnd, Name: "C::outer"},
		trace.Event{Time: 120, Thread: 1, Kind: trace.KindBegin, Name: "C::inner"},
		trace.Event{Time: 180, Thread: 1, Kind: trace.KindEnd, Name: "C::inner"},
	)
	d := MethodDurations(tr)
	if len(d["C::outer"]) != 1 || d["C::outer"][0] != 300 {
		t.Errorf("outer durations = %v", d["C::outer"])
	}
	if len(d["C::inner"]) != 2 {
		t.Errorf("inner durations = %v", d["C::inner"])
	}
}

func TestObservationsAccumulation(t *testing.T) {
	o := NewObservations(DefaultConfig())
	k := trace.KeyFor(trace.KindWrite, "C::f")
	w1 := Window{Pair: PairID{First: 1, Second: 2}, RelEvents: []CandEvent{{Key: k}, {Key: k}},
		AcqEvents: []CandEvent{{Key: trace.KeyFor(trace.KindRead, "C::f")}}}
	w2 := Window{Pair: PairID{First: 1, Second: 2}, RelEvents: []CandEvent{{Key: k}, {Key: k}, {Key: k}, {Key: k}},
		AcqEvents: []CandEvent{{Key: trace.KeyFor(trace.KindRead, "C::f")}}}
	o.AddWindows([]Window{w1, w2})
	if got := o.AvgOccurrence(k); got != 3 { // (2+4)/2
		t.Errorf("AvgOccurrence = %v, want 3", got)
	}
	if len(o.Windows) != 2 || len(o.ActiveWindows()) != 2 {
		t.Errorf("windows = %d active = %d", len(o.Windows), len(o.ActiveWindows()))
	}
}

func TestObservationsPerPairCapAcrossRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerPairCap = 3
	o := NewObservations(cfg)
	k := trace.KeyFor(trace.KindWrite, "C::f")
	for i := 0; i < 10; i++ {
		o.AddWindows([]Window{{Pair: PairID{First: 1, Second: 2},
			RelEvents: []CandEvent{{Key: k}},
			AcqEvents: []CandEvent{{Key: trace.KeyFor(trace.KindRead, "C::f")}}}})
	}
	if len(o.Windows) != 3 {
		t.Errorf("accumulated %d windows, cap 3", len(o.Windows))
	}
}

func TestObservationsRacyPairExclusion(t *testing.T) {
	o := NewObservations(DefaultConfig())
	racy := Window{Pair: PairID{First: 5, Second: 6}} // empty: racy
	ok := Window{Pair: PairID{First: 1, Second: 2},
		RelEvents: []CandEvent{{Key: trace.KeyFor(trace.KindWrite, "C::f")}},
		AcqEvents: []CandEvent{{Key: trace.KeyFor(trace.KindRead, "C::f")}}}
	// A later good-looking window of the same racy pair stays excluded.
	late := Window{Pair: PairID{First: 5, Second: 6},
		RelEvents: []CandEvent{{Key: trace.KeyFor(trace.KindWrite, "C::g")}},
		AcqEvents: []CandEvent{{Key: trace.KeyFor(trace.KindRead, "C::g")}}}
	o.AddWindows([]Window{racy, ok, late})
	if !o.RacyPairs[PairID{First: 5, Second: 6}] {
		t.Fatal("racy pair not recorded")
	}
	act := o.ActiveWindows()
	if len(act) != 1 || act[0].Pair != (PairID{First: 1, Second: 2}) {
		t.Errorf("active windows = %v", act)
	}
}

func TestCVPercentiles(t *testing.T) {
	o := NewObservations(DefaultConfig())
	tr := mkTrace(
		// stable: durations 100, 100
		trace.Event{Time: 0, Thread: 0, Kind: trace.KindBegin, Name: "C::stable"},
		trace.Event{Time: 100, Thread: 0, Kind: trace.KindEnd, Name: "C::stable"},
		trace.Event{Time: 200, Thread: 0, Kind: trace.KindBegin, Name: "C::stable"},
		trace.Event{Time: 300, Thread: 0, Kind: trace.KindEnd, Name: "C::stable"},
		// varying: durations 10, 1000
		trace.Event{Time: 400, Thread: 0, Kind: trace.KindBegin, Name: "C::vary"},
		trace.Event{Time: 410, Thread: 0, Kind: trace.KindEnd, Name: "C::vary"},
		trace.Event{Time: 500, Thread: 0, Kind: trace.KindBegin, Name: "C::vary"},
		trace.Event{Time: 1500, Thread: 0, Kind: trace.KindEnd, Name: "C::vary"},
	)
	o.AddTraceStats(tr)
	ps := o.CVPercentiles()
	if ps["C::vary"] <= ps["C::stable"] {
		t.Errorf("varying method must rank above stable: %v vs %v", ps["C::vary"], ps["C::stable"])
	}
}

// Property: every window candidate lies strictly between the pair and on
// the right thread.
func TestBuildWindowProperty(t *testing.T) {
	f := func(times []uint16, threads []uint8) bool {
		if len(times) == 0 {
			return true
		}
		n := len(times)
		if len(threads) < n {
			return true
		}
		a := ev(10, 0, trace.KindWrite, "C::x", 1)
		b := ev(70000, 1, trace.KindRead, "C::x", 1)
		events := []trace.Event{a}
		for i := 0; i < n; i++ {
			e := ev(int64(times[i])+11, int(threads[i]%3), trace.KindWrite, "C::o", 9)
			events = append(events, e)
		}
		events = append(events, b)
		w := BuildWindow(mkTrace(events...), Conflict{A: a, B: b})
		for _, c := range w.RelEvents {
			if c.Time <= a.Time || c.Time >= b.Time {
				return false
			}
		}
		for _, c := range w.AcqEvents {
			if c.Time <= a.Time || c.Time >= b.Time {
				return false
			}
		}
		return len(w.RelEvents)+len(w.AcqEvents) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// BuildWindows must be observationally equivalent to per-conflict
// BuildWindow, across randomized traces.
func TestBuildWindowsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		tr := &trace.Trace{App: "a", Test: "t"}
		tm := int64(0)
		nAddrs := 1 + rng.Intn(3)
		for i := 0; i < 60; i++ {
			tm += int64(1 + rng.Intn(120))
			kind := trace.Kind(rng.Intn(4))
			acc := trace.AccNone
			addr := uint64(0)
			if kind == trace.KindRead {
				acc = trace.AccRead
				addr = uint64(1 + rng.Intn(nAddrs))
			} else if kind == trace.KindWrite {
				acc = trace.AccWrite
				addr = uint64(1 + rng.Intn(nAddrs))
			}
			tr.Events = append(tr.Events, trace.Event{
				Time: tm, Thread: rng.Intn(3), Kind: kind,
				Name: "C::x", Addr: addr, Site: 1 + rng.Intn(10), Acc: acc,
			})
		}
		cfg := DefaultConfig()
		conflicts := FindConflicts(tr, cfg)
		batch := BuildWindows(tr, conflicts)
		if len(batch) != len(conflicts) {
			t.Fatalf("trial %d: %d windows for %d conflicts", trial, len(batch), len(conflicts))
		}
		for i, c := range conflicts {
			single := BuildWindow(tr, c)
			if !windowsEqual(single, batch[i]) {
				t.Fatalf("trial %d conflict %d:\n single %+v\n batch  %+v", trial, i, single, batch[i])
			}
		}
	}
}

func windowsEqual(a, b Window) bool {
	if a.Pair != b.Pair || a.TA != b.TA || a.TB != b.TB ||
		a.ThreadA != b.ThreadA || a.ThreadB != b.ThreadB {
		return false
	}
	if len(a.RelEvents) != len(b.RelEvents) || len(a.AcqEvents) != len(b.AcqEvents) {
		return false
	}
	for i := range a.RelEvents {
		if a.RelEvents[i] != b.RelEvents[i] {
			return false
		}
	}
	for i := range a.AcqEvents {
		if a.AcqEvents[i] != b.AcqEvents[i] {
			return false
		}
	}
	return true
}

// BenchmarkFindConflicts measures conflict-pair detection (now with the
// sorted address walk) on an App-1-sized trace.
func BenchmarkFindConflicts(b *testing.B) {
	tr, _ := benchTrace()
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindConflicts(tr, cfg)
	}
}

// BenchmarkBuildWindows vs the naive path, on an App-1-sized trace.
func BenchmarkBuildWindows(b *testing.B) {
	tr, conflicts := benchTrace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildWindows(tr, conflicts)
	}
}

func BenchmarkBuildWindowNaive(b *testing.B) {
	tr, conflicts := benchTrace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range conflicts {
			BuildWindow(tr, c)
		}
	}
}

func benchTrace() (*trace.Trace, []Conflict) {
	rng := rand.New(rand.NewSource(5))
	tr := &trace.Trace{App: "bench", Test: "t"}
	tm := int64(0)
	for i := 0; i < 1200; i++ {
		tm += int64(1 + rng.Intn(50))
		kind := trace.Kind(rng.Intn(4))
		acc := trace.AccNone
		addr := uint64(0)
		if kind == trace.KindRead {
			acc, addr = trace.AccRead, uint64(1+rng.Intn(6))
		} else if kind == trace.KindWrite {
			acc, addr = trace.AccWrite, uint64(1+rng.Intn(6))
		}
		tr.Events = append(tr.Events, trace.Event{
			Time: tm, Thread: rng.Intn(4), Kind: kind,
			Name: "C::x", Addr: addr, Site: 1 + rng.Intn(40), Acc: acc,
		})
	}
	return tr, FindConflicts(tr, DefaultConfig())
}
