package sherlock

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestFacadeObserver: the public Observer surface — a MemorySink observer
// collects the campaign span tree and the Round callback fires per round.
func TestFacadeObserver(t *testing.T) {
	app := buildDemo()
	mem := NewMemorySink()
	rounds := 0
	cfg := DefaultConfig()
	cfg.Observer = ObserverFuncs{
		OnEvent: mem.Emit,
		OnRound: func(snap RoundSnapshot, acc *Observations) { rounds++ },
	}
	if _, err := Infer(context.Background(), app, cfg); err != nil {
		t.Fatal(err)
	}
	if rounds != cfg.Rounds {
		t.Errorf("Round fired %d times, want %d", rounds, cfg.Rounds)
	}
	render := mem.Render()
	if !strings.Contains(render, "campaign:facade-demo{") || !strings.Contains(render, "round:01{") {
		t.Fatalf("observer missed the campaign tree:\n%s", render)
	}
}

// TestFacadeTraceOutRoundTrip: the JSONL event log written through the
// public sink parses back into the identical deterministic rendering.
func TestFacadeTraceOutRoundTrip(t *testing.T) {
	app := buildDemo()
	var buf bytes.Buffer
	mem := NewMemorySink()
	jsonl := NewJSONLSink(&buf) // serializes concurrent Emits onto buf
	cfg := DefaultConfig()
	cfg.Observer = ObserverFuncs{OnEvent: func(e SpanEvent) {
		mem.Emit(e)
		jsonl.Emit(e)
	}}
	if _, err := Infer(context.Background(), app, cfg); err != nil {
		t.Fatal(err)
	}
	events, err := ParseJSONLLog(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if RenderSpanEvents(events) != mem.Render() {
		t.Fatal("event-log render diverges from in-memory render")
	}
}

func TestCompareDetectorsOptions(t *testing.T) {
	app, err := AppByName("App-7")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Infer(context.Background(), app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := CompareDetectors(context.Background(), app, res.SyncKeys())
	if err != nil {
		t.Fatal(err)
	}
	// Options route through: an explicit default config reproduces the
	// no-option call, and WithRaceRuns actually changes the protocol.
	same, err := CompareDetectors(context.Background(), app, res.SyncKeys(),
		WithRaceConfig(DefaultRaceConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if base.App != same.App || base.ManualTrue != same.ManualTrue {
		t.Error("WithRaceConfig(DefaultRaceConfig()) diverges from the default call")
	}
	if _, err := CompareDetectors(context.Background(), app, res.SyncKeys(),
		WithRaceRuns(1), WithRaceSeed(7)); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeTSVDOptions(t *testing.T) {
	app, err := AppByName("App-7")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Infer(context.Background(), app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTSVDConfig()
	got := cfg
	apply := []TSVDOption{WithTSVDRuns(5), WithTSVDSeed(11), WithTSVDNear(2_000_000), WithTSVDDelay(50_000)}
	for _, opt := range apply {
		opt(&got)
	}
	if got.Runs != 5 || got.Seed != 11 || got.Near != 2_000_000 || got.Delay != 50_000 {
		t.Fatalf("options did not apply: %+v", got)
	}
	if _, err := AnalyzeTSVD(context.Background(), app, res.SyncKeys(),
		WithTSVDConfig(cfg), WithTSVDRuns(2)); err != nil {
		t.Fatal(err)
	}
}

// TestCaptureTracePromptCancel: CaptureTrace's documented contract — a
// canceled context aborts the scheduler run promptly with a matching error.
func TestCaptureTracePromptCancel(t *testing.T) {
	app := buildDemo()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	tr, err := CaptureTrace(ctx, app, app.Tests[0], 1)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled CaptureTrace took %v", elapsed)
	}
	if tr != nil {
		t.Error("canceled capture returned a trace")
	}
	if !errors.Is(err, ctx.Err()) {
		t.Fatalf("err = %v, want to match ctx.Err()", err)
	}
}
