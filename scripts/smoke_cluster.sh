#!/usr/bin/env bash
# Smoke-test the cluster stack end to end with two real sherlockd
# processes: boot a 2-node cluster, upload a trace to node 1 and watch it
# replicate to node 2, compute a job via node 1, assert the same
# submission on node 2 is answered by the cluster cache WITHOUT a second
# compute (byte-identical result), check the cluster info/verify/metrics
# surfaces on both nodes, and finish with a SIGTERM drain of both.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=$(mktemp -d)/sherlockd
LOG1=$(mktemp) LOG2=$(mktemp)
CORPUS1=$(mktemp -d) CORPUS2=$(mktemp -d)
go build -o "$BIN" ./cmd/sherlockd

# Cluster members need fixed addresses known up front (-peers). Pick two
# free ports; retry the whole boot on the rare collision race.
pick_port() {
  python3 - <<'EOF' 2>/dev/null || go run - <<'EOG'
import socket
s = socket.socket(); s.bind(("127.0.0.1", 0)); print(s.getsockname()[1]); s.close()
EOF
package main
import ("fmt"; "net")
func main() {
  ln, _ := net.Listen("tcp", "127.0.0.1:0")
  fmt.Println(ln.Addr().(*net.TCPAddr).Port)
  ln.Close()
}
EOG
}

PID1="" PID2=""
cleanup() {
  [ -n "$PID1" ] && kill "$PID1" 2>/dev/null || true
  [ -n "$PID2" ] && kill "$PID2" 2>/dev/null || true
}
trap cleanup EXIT

started=false
for attempt in 1 2 3; do
  P1=$(pick_port); P2=$(pick_port)
  [ "$P1" != "$P2" ] || continue
  PEERS="n1=http://127.0.0.1:$P1,n2=http://127.0.0.1:$P2"
  "$BIN" -addr "127.0.0.1:$P1" -node-id n1 -peers "$PEERS" -workers 2 -rounds 1 \
    -corpus "$CORPUS1" -anti-entropy 500ms >"$LOG1" 2>&1 &
  PID1=$!
  "$BIN" -addr "127.0.0.1:$P2" -node-id n2 -peers "$PEERS" -workers 2 -rounds 1 \
    -corpus "$CORPUS2" -anti-entropy 500ms >"$LOG2" 2>&1 &
  PID2=$!
  ok=true
  for log in "$LOG1" "$LOG2"; do
    bound=false
    for _ in $(seq 1 100); do
      grep -q "listening on" "$log" && { bound=true; break; }
      sleep 0.1
    done
    $bound || ok=false
  done
  if $ok; then started=true; break; fi
  cleanup; PID1="" PID2=""
  sleep 0.2
done
$started || { echo "cluster never started"; cat "$LOG1" "$LOG2"; exit 1; }

N1="http://127.0.0.1:$P1"
N2="http://127.0.0.1:$P2"
echo "smoke-cluster: n1 at $N1, n2 at $N2"

# Both nodes serve /v1/cluster/info and see each other as up (give the
# first probe round a moment).
ups() { grep -o '"up":true' | wc -l; }
for _ in $(seq 1 50); do
  I1=$(curl -fsS "$N1/v1/cluster/info")
  I2=$(curl -fsS "$N2/v1/cluster/info")
  echo "$I1" | grep -q '"node":"n1"' && \
  [ "$(echo "$I1" | ups)" -eq 2 ] && [ "$(echo "$I2" | ups)" -eq 2 ] && break
  sleep 0.1
done
echo "$I1" | grep -q '"node":"n1"' || { echo "bad cluster info on n1: $I1"; exit 1; }
[ "$(echo "$I1" | ups)" -eq 2 ] || { echo "n1 does not see both members up: $I1"; exit 1; }
[ "$(echo "$I2" | ups)" -eq 2 ] || { echo "n2 does not see both members up: $I2"; exit 1; }
echo "smoke-cluster: cluster info ok on both nodes"

# Peer liveness is exported as a labeled gauge. Capture the body before
# grepping: under pipefail, `curl | grep -q` fails spuriously when grep
# exits on the first match and curl dies on the closed pipe (exit 23).
M1=$(curl -fsS "$N1/metrics")
echo "$M1" | grep -q '^sherlock_cluster_peer_up{peer="n2"} 1$' \
  || { echo "n1 metrics missing peer_up for n2"; exit 1; }

# Upload one trace to n1 only; replication (fan-out or anti-entropy)
# must land the blob on n2's corpus without n2 ever seeing the upload.
TRACES=$(mktemp -d)
go run ./cmd/sherlock -app App-1 -dump-traces "$TRACES" >/dev/null
TRACE_FILE=$(ls "$TRACES"/*.jsonl | head -1)
UP=$(curl -fsS -X POST --data-binary @"$TRACE_FILE" "$N1/v1/traces")
TKEY=$(echo "$UP" | grep -o '"key":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$TKEY" ] || { echo "no trace key: $UP"; exit 1; }
echo "smoke-cluster: uploaded $TKEY to n1"

REPLICATED=false
for _ in $(seq 1 100); do
  if curl -fsS "$N2/v1/traces" | grep -q "$TKEY"; then REPLICATED=true; break; fi
  sleep 0.1
done
$REPLICATED || { echo "blob never replicated to n2"; curl -fsS "$N2/v1/traces"; exit 1; }
echo "smoke-cluster: blob replicated to n2"

# Compute via n1 (n1 either owns the key or proxies to n2 — both are
# cluster paths worth exercising).
run_job() { # base spec-json -> prints "ID KEY" and waits for done
  local base=$1 spec=$2 view id key status
  view=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$spec" "$base/v1/jobs")
  id=$(echo "$view" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
  key=$(echo "$view" | grep -o '"key":"[^"]*"' | head -1 | cut -d'"' -f4)
  [ -n "$id" ] && [ -n "$key" ] || { echo "bad submit response: $view" >&2; return 1; }
  for _ in $(seq 1 300); do
    status=$(curl -fsS "$base/v1/jobs/$id" | grep -o '"status":"[^"]*"' | cut -d'"' -f4)
    [ "$status" = done ] && { echo "$id $key"; return 0; }
    { [ "$status" = failed ] || [ "$status" = canceled ]; } && { echo "job $status" >&2; return 1; }
    sleep 0.1
  done
  echo "job stuck in $status" >&2
  return 1
}
SPEC="{\"trace_keys\":[\"$TKEY\"]}"
read -r _ JKEY <<<"$(run_job "$N1" "$SPEC")"
R1=$(curl -fsS "$N1/v1/results/$JKEY")
echo "$R1" | grep -q '"Inferred"' || { echo "n1 result lacks payload"; exit 1; }
echo "smoke-cluster: job computed, key $JKEY"

# Exactly one compute so far, cluster-wide.
C1=$(curl -fsS "$N1/metrics" | sed -n 's/^sherlock_jobs_computed_total \([0-9]*\)$/\1/p')
C2=$(curl -fsS "$N2/metrics" | sed -n 's/^sherlock_jobs_computed_total \([0-9]*\)$/\1/p')
[ $((${C1:-0} + ${C2:-0})) -eq 1 ] || { echo "cluster computed $C1+$C2 times, want 1"; exit 1; }

# The same submission via n2 must be answered from the cluster cache:
# byte-identical result, still exactly one compute anywhere.
read -r _ JKEY2 <<<"$(run_job "$N2" "$SPEC")"
[ "$JKEY2" = "$JKEY" ] || { echo "content key drift across nodes: $JKEY vs $JKEY2"; exit 1; }
R2=$(curl -fsS "$N2/v1/results/$JKEY")
[ "$R1" = "$R2" ] || { echo "results differ across nodes"; exit 1; }
C1=$(curl -fsS "$N1/metrics" | sed -n 's/^sherlock_jobs_computed_total \([0-9]*\)$/\1/p')
C2=$(curl -fsS "$N2/metrics" | sed -n 's/^sherlock_jobs_computed_total \([0-9]*\)$/\1/p')
[ $((${C1:-0} + ${C2:-0})) -eq 1 ] || { echo "resubmit recomputed: $C1+$C2, want 1"; exit 1; }

# The cross-node serving shows up in the cluster counters on SOME node
# (remote cache hit or proxied job, depending on who owns the key).
CROSS=0
for base in "$N1" "$N2"; do
  for metric in sherlock_cluster_remote_cache_hits_total sherlock_cluster_proxied_jobs_total; do
    v=$(curl -fsS "$base/metrics" | sed -n "s/^$metric \([0-9]*\)$/\1/p")
    CROSS=$((CROSS + ${v:-0}))
  done
done
[ "$CROSS" -ge 1 ] || { echo "no cross-node traffic recorded in metrics"; exit 1; }
echo "smoke-cluster: cross-node cache hit ok (cross-node counter total $CROSS)"

# Corpus integrity: machine-readable verification is clean on both nodes.
for base in "$N1" "$N2"; do
  V=$(curl -fsS "$base/v1/corpus/verify")
  echo "$V" | grep -q '"clean":true' || { echo "corpus verify not clean on $base: $V"; exit 1; }
done
echo "smoke-cluster: corpus verify clean on both nodes"

# Graceful drain of both members.
kill -TERM "$PID1" "$PID2"
for pid in $PID1 $PID2; do
  for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  kill -0 "$pid" 2>/dev/null && { echo "a node did not drain"; exit 1; }
done
grep -q "drained, bye" "$LOG1" || { echo "n1 no graceful-drain message"; cat "$LOG1"; exit 1; }
grep -q "drained, bye" "$LOG2" || { echo "n2 no graceful-drain message"; cat "$LOG2"; exit 1; }
echo "smoke-cluster: graceful drain ok"
echo "smoke-cluster: PASS"
