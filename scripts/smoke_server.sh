#!/usr/bin/env bash
# Smoke-test the serving stack end to end: start sherlockd on a random
# port, submit a small application job, poll it to completion, resubmit
# the identical job and assert it is answered from the result cache, then
# scrape /metrics and verify the hit is visible. Finishes with a SIGTERM
# graceful drain.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=$(mktemp -d)/sherlockd
LOG=$(mktemp)
go build -o "$BIN" ./cmd/sherlockd

"$BIN" -addr 127.0.0.1:0 -workers 2 -rounds 1 -pprof >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# The daemon prints "listening on HOST:PORT" once the socket is bound.
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^sherlockd: listening on \(.*\)$/\1/p' "$LOG" | head -1)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "sherlockd never started"; cat "$LOG"; exit 1; }
BASE="http://$ADDR"
echo "smoke: daemon at $BASE"

curl -fsS "$BASE/healthz" | grep -q '"ok"' || { echo "healthz not ok"; exit 1; }

# Profiling handlers are mounted because the daemon was started with
# -pprof (they are absent by default).
curl -fsS "$BASE/debug/pprof/goroutine?debug=1" | grep -q 'goroutine' \
  || { echo "pprof handlers not mounted under -pprof"; exit 1; }

# Cold submission: must be accepted (202) and not served from cache.
COLD=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"app":"App-1"}' "$BASE/v1/jobs")
echo "smoke: cold submit: $COLD"
echo "$COLD" | grep -q '"cached":false' || { echo "cold submit claimed cached"; exit 1; }
ID=$(echo "$COLD" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
KEY=$(echo "$COLD" | grep -o '"key":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$ID" ] && [ -n "$KEY" ] || { echo "no id/key in response"; exit 1; }

# Poll to completion.
STATUS=""
for _ in $(seq 1 300); do
  STATUS=$(curl -fsS "$BASE/v1/jobs/$ID" | grep -o '"status":"[^"]*"' | cut -d'"' -f4)
  [ "$STATUS" = done ] && break
  [ "$STATUS" = failed ] || [ "$STATUS" = canceled ] && { echo "job $STATUS"; exit 1; }
  sleep 0.1
done
[ "$STATUS" = done ] || { echo "job stuck in $STATUS"; exit 1; }
echo "smoke: job $ID done, key $KEY"

COLD_RESULT=$(curl -fsS "$BASE/v1/results/$KEY")
echo "$COLD_RESULT" | grep -q '"Inferred"' || { echo "result lacks inference payload"; exit 1; }

# Resubmission: identical content must be a cache hit with the same key.
HIT=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"app":"App-1"}' "$BASE/v1/jobs")
echo "smoke: resubmit: $HIT"
echo "$HIT" | grep -q '"cached":true' || { echo "resubmission missed the cache"; exit 1; }
echo "$HIT" | grep -q "\"key\":\"$KEY\"" || { echo "resubmission changed the content key"; exit 1; }
HIT_RESULT=$(curl -fsS "$BASE/v1/results/$KEY")
[ "$COLD_RESULT" = "$HIT_RESULT" ] || { echo "cached result not byte-identical"; exit 1; }

# Metrics reflect the hit, the completed job, and the campaign's pivots.
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^sherlock_cache_hits_total 1$' || { echo "metrics missing cache hit"; echo "$METRICS"; exit 1; }
echo "$METRICS" | grep -q '^sherlock_jobs_total{status="done"} 1$' || { echo "metrics missing done job"; exit 1; }
echo "$METRICS" | grep -q '^sherlock_lp_pivots_total [1-9]' || { echo "metrics missing LP pivots"; exit 1; }
echo "smoke: metrics ok"

# Static inference: the report endpoint computes on first touch, serves
# byte-identically from the cache after, and carries the program hash.
STATIC1=$(curl -fsS "$BASE/v1/apps/App-1/static")
echo "$STATIC1" | grep -q '"Inferred"' || { echo "static report lacks inference payload"; exit 1; }
echo "$STATIC1" | grep -q '"program_hash"' || { echo "static report lacks program hash"; exit 1; }
STATIC2=$(curl -fsS "$BASE/v1/apps/App-1/static")
[ "$STATIC1" = "$STATIC2" ] || { echo "static report not byte-identical across fetches"; exit 1; }
curl -s "$BASE/v1/apps/no-such-app/static" | grep -q '"code":"not_found"' \
  || { echo "unknown app static fetch not a v1 not_found"; exit 1; }
echo "smoke: static report endpoint ok"

# A static job shares the report's content address: submitting one for the
# already-fetched app must be an instant cache hit.
SJOB=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"static_app":"App-1"}' "$BASE/v1/jobs")
echo "smoke: static job: $SJOB"
echo "$SJOB" | grep -q '"cached":true' || { echo "static job missed the report cache"; exit 1; }
echo "smoke: static job content-shares the report cache ok"

# Generated apps: a gen:<seed> campaign submitted in the unified
# {"mode","target"} shape runs like any built-in, and the legacy
# {"app"} spelling of the same job is a cache hit on the same key.
GJOB=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"mode":"app","target":"gen:42"}' "$BASE/v1/jobs")
echo "smoke: gen job: $GJOB"
GID=$(echo "$GJOB" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
GKEY=$(echo "$GJOB" | grep -o '"key":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$GID" ] && [ -n "$GKEY" ] || { echo "no id/key in gen job response"; exit 1; }
STATUS=""
for _ in $(seq 1 300); do
  STATUS=$(curl -fsS "$BASE/v1/jobs/$GID" | grep -o '"status":"[^"]*"' | cut -d'"' -f4)
  [ "$STATUS" = done ] && break
  [ "$STATUS" = failed ] || [ "$STATUS" = canceled ] && { echo "gen job $STATUS"; exit 1; }
  sleep 0.1
done
[ "$STATUS" = done ] || { echo "gen job stuck in $STATUS"; exit 1; }
GHIT=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"app":"gen:42"}' "$BASE/v1/jobs")
echo "$GHIT" | grep -q '"cached":true' || { echo "legacy gen resubmit missed the cache"; exit 1; }
echo "$GHIT" | grep -q "\"key\":\"$GKEY\"" || { echo "mode/legacy gen spellings hash differently"; exit 1; }
curl -fsS "$BASE/v1/apps/gen:42/static" | grep -q '"program_hash"' \
  || { echo "gen static report lacks program hash"; exit 1; }
echo "smoke: generated app job + unified mode spec ok"

# Errors arrive in the v1 envelope with a machine code.
ERR=$(curl -s "$BASE/v1/jobs/job-999999")
echo "$ERR" | grep -q '"error":{"code":"not_found"' || { echo "404 not in v1 envelope: $ERR"; exit 1; }

# Streaming: create a watch job bound to App-1 BEFORE any trace exists, so
# the upload below is observed live.
WJOB=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"watch_app":"App-1"}' "$BASE/v1/jobs")
echo "smoke: watch job: $WJOB"
echo "$WJOB" | grep -q '"status":"watching"' || { echo "watch job not watching"; exit 1; }
WID=$(echo "$WJOB" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$WID" ] || { echo "no id in watch job response"; exit 1; }
curl -fsS "$BASE/v1/jobs?status=watching" | grep -q "\"id\":\"$WID\"" \
  || { echo "watch job missing from ?status=watching listing"; exit 1; }

# Trace corpus: upload a captured trace, assert dedup on re-upload, then
# run inference addressed by the corpus key.
TRACES=$(mktemp -d)
go run ./cmd/sherlock -app App-1 -dump-traces "$TRACES" >/dev/null
TRACE_FILE=$(ls "$TRACES"/*.jsonl | head -1)

UP1=$(curl -fsS -X POST --data-binary @"$TRACE_FILE" "$BASE/v1/traces")
echo "smoke: upload: $UP1"
echo "$UP1" | grep -q '"dedup":false' || { echo "first upload claimed dedup"; exit 1; }
TKEY=$(echo "$UP1" | grep -o '"key":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$TKEY" ] || { echo "no trace key in upload response"; exit 1; }

UP2=$(curl -fsS -X POST --data-binary @"$TRACE_FILE" "$BASE/v1/traces")
echo "$UP2" | grep -q '"dedup":true' || { echo "re-upload did not dedup"; exit 1; }
echo "$UP2" | grep -q "\"key\":\"$TKEY\"" || { echo "re-upload changed the content key"; exit 1; }
curl -fsS "$BASE/v1/traces" | grep -q '"count":1' || { echo "corpus listing should have exactly one trace"; exit 1; }

CJOB=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d "{\"trace_keys\":[\"$TKEY\"]}" "$BASE/v1/jobs")
echo "smoke: corpus job: $CJOB"
CID=$(echo "$CJOB" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
CKEY=$(echo "$CJOB" | grep -o '"key":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$CID" ] && [ -n "$CKEY" ] || { echo "no id/key in corpus job response"; exit 1; }
STATUS=""
for _ in $(seq 1 300); do
  STATUS=$(curl -fsS "$BASE/v1/jobs/$CID" | grep -o '"status":"[^"]*"' | cut -d'"' -f4)
  [ "$STATUS" = done ] && break
  [ "$STATUS" = failed ] || [ "$STATUS" = canceled ] && { echo "corpus job $STATUS"; exit 1; }
  sleep 0.1
done
[ "$STATUS" = done ] || { echo "corpus job stuck in $STATUS"; exit 1; }
curl -fsS "$BASE/v1/results/$CKEY" | grep -q '"Inferred"' || { echo "corpus result lacks inference payload"; exit 1; }
echo "smoke: corpus upload + inference by key ok"

# The watch job saw the upload: long-poll until it publishes version 1,
# and its content key must be the one-shot corpus job's key — streaming
# and one-shot solves share cache entries.
WVIEW=$(curl -fsS "$BASE/v1/jobs/$WID/watch?after=0&timeout=20")
echo "smoke: watch update: $WVIEW"
echo "$WVIEW" | grep -q '"version":1' || { echo "watch job never published"; exit 1; }
echo "$WVIEW" | grep -q "\"key\":\"$CKEY\"" || { echo "watch key differs from one-shot corpus key"; exit 1; }
curl -fsS "$BASE/v1/results/$CKEY" | grep -q '"Inferred"' || { echo "watch result lacks inference payload"; exit 1; }
echo "smoke: upload-while-watching ok"

# Graceful drain on SIGTERM (with the watch subscription still active).
kill -TERM "$PID"
for _ in $(seq 1 100); do
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$PID" 2>/dev/null; then echo "daemon did not drain"; exit 1; fi
grep -q "drained, bye" "$LOG" || { echo "no graceful-drain message"; cat "$LOG"; exit 1; }
echo "smoke: graceful drain ok"
echo "smoke: PASS"
