// Package sherlock is a Go reproduction of "SherLock: Unsupervised
// Synchronization-Operation Inference" (Li, Chen, Lu, Musuvathi, Nath —
// ASPLOS 2021).
//
// SherLock infers which operations of a concurrent program act as
// synchronization — acquires and releases that induce happens-before
// edges — with no annotations: it executes the program's tests a few
// times under observation, collects acquire/release windows around
// conflicting accesses, encodes a set of synchronization properties and
// hypotheses as a linear program, and perturbs subsequent runs with
// targeted delays to sharpen the evidence.
//
// The package exposes the full pipeline:
//
//   - Program construction: build concurrent workloads with the statement
//     DSL in internal/prog, re-exported here via type aliases (Program,
//     Method, Test). The eight benchmark applications of the paper are
//     available through Apps and AppByName.
//   - Inference: Infer runs the Observer → Solver → Perturber loop and
//     returns the inferred operation set; InferAll batches whole
//     applications concurrently; ScoreResult classifies a result against
//     a program's ground truth.
//   - Consumers: CompareDetectors feeds an inferred SyncSet into a
//     FastTrack race detector next to a manually annotated baseline
//     (the paper's Manual_dr vs SherLock_dr); AnalyzeTSVD reproduces the
//     TSVD-enhancement study. Both take functional options (WithRaceRuns,
//     WithTSVDSeed, ...) over their Default*Config.
//   - Observability: set Config.Observer to receive the campaign's span
//     stream — a deterministic tree of campaign → round → execute/encode/
//     solve/perturb spans with typed attributes and counters. MemorySink
//     buffers and reconstructs trees for inspection; JSONLSink streams an
//     event log (`sherlock -trace-out=events.jsonl`). Span IDs and
//     attributes are identical across parallelism levels; only wall-clock
//     durations vary.
//
// Every entrypoint that executes tests takes a context.Context as its
// first argument; cancellation aborts a campaign between test executions
// and the returned error matches errors.Is(err, ctx.Err()). Within each
// round the per-test executions run on a bounded worker pool
// (Config.Parallelism, default GOMAXPROCS); results are bit-identical for
// every parallelism level.
//
// Quick start:
//
//	app := sherlock.NewProgram("demo", "Demo")
//	// ... add methods and tests (see examples/quickstart) ...
//	res, err := sherlock.Infer(context.Background(), app, sherlock.DefaultConfig())
//	for _, s := range res.Inferred {
//		fmt.Println(s.Role, s.Key.Display())
//	}
package sherlock

import (
	"context"
	"io"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/obs"
	"sherlock/internal/prog"
	"sherlock/internal/race"
	"sherlock/internal/sched"
	"sherlock/internal/store"
	"sherlock/internal/trace"
	"sherlock/internal/tsvd"
	"sherlock/internal/window"
)

// Core types, re-exported.
type (
	// Program is a concurrent application under analysis.
	Program = prog.Program
	// Method is one application method.
	Method = prog.Method
	// Test is one unit test of a Program.
	Test = prog.Test
	// Truth is a program's ground-truth annotation (optional; used only
	// for scoring).
	Truth = prog.Truth

	// Config tunes an inference campaign (rounds, Near, λ, hypotheses,
	// parallelism, feedback toggles). Validate reports misconfigurations.
	Config = core.Config
	// Result is the outcome of Infer.
	Result = core.Result
	// InferredSync is one reported synchronization operation.
	InferredSync = core.InferredSync
	// Score classifies a Result against ground truth.
	Score = core.Score

	// Key names a static candidate operation ("write:Class::field",
	// "begin:Class::Method", ...).
	Key = trace.Key
	// Role is acquire or release.
	Role = trace.Role
	// SyncSet maps inferred synchronization operations to their roles —
	// the typed currency between Infer (via Result.SyncKeys) and the
	// consumers CompareDetectors and AnalyzeTSVD.
	SyncSet = trace.SyncSet

	// Trace is one test execution's log in the paper's schema.
	Trace = trace.Trace
	// TraceSource streams stored traces into the offline solve
	// (InferFromSource); Corpus.Source and SliceSource implement it.
	TraceSource = core.TraceSource
	// SliceSource adapts in-memory traces to TraceSource.
	SliceSource = core.SliceSource

	// Corpus is a content-addressed on-disk trace corpus (OpenCorpus):
	// binary blobs keyed by SHA-256 of their canonical encoding, with
	// dedup, a manifest index, and integrity verification.
	Corpus = store.Corpus
	// CorpusEntry is one corpus trace's index record.
	CorpusEntry = store.Entry
	// CorpusVerifyReport is the machine-readable outcome of
	// Corpus.Verify: sorted corrupt/missing/orphan key lists.
	CorpusVerifyReport = store.VerifyReport

	// RaceComparison is a Manual_dr vs SherLock_dr detection outcome.
	RaceComparison = race.Comparison
	// RaceConfig tunes CompareDetectors (runs per test, seed). Construct
	// with DefaultRaceConfig and adjust, or use the WithRace* options.
	RaceConfig = race.CompareConfig
	// TSVDResult is the outcome of the TSVD-enhancement analysis.
	TSVDResult = tsvd.Result
	// TSVDConfig tunes AnalyzeTSVD (runs, seed, near window, delay
	// threshold). Construct with DefaultTSVDConfig and adjust, or use the
	// WithTSVD* options.
	TSVDConfig = tsvd.Config

	// Observer receives an inference campaign's observability stream: every
	// span event the tracer emits plus a Round callback at the end of each
	// round. Set it on Config.Observer; it subsumes the deprecated OnRound
	// and OnSnapshot hooks. Implementations must be safe for concurrent
	// Event calls (per-test spans end on pool workers).
	Observer = core.Observer
	// ObserverFuncs adapts plain functions to Observer; nil fields are
	// skipped.
	ObserverFuncs = core.ObserverFuncs
	// RoundSnapshot summarizes one completed inference round.
	RoundSnapshot = core.RoundSnapshot
	// Observations is the accumulated window evidence handed to
	// Observer.Round.
	Observations = window.Observations

	// SpanEvent is one tracer event (span start/end, annotation, counter
	// delta) in the observability stream.
	SpanEvent = obs.Event
	// SpanNode is one reconstructed span-tree node (MemorySink.Tree,
	// sherlockd's spans endpoint).
	SpanNode = obs.Node
	// MemorySink buffers span events in memory and reconstructs span trees —
	// the test and programmatic-inspection sink.
	MemorySink = obs.MemorySink
	// JSONLSink streams span events as JSON lines to an io.Writer — the
	// event-log sink behind `sherlock -trace-out`.
	JSONLSink = obs.JSONLSink
)

// Role values.
const (
	RoleAcquire = trace.RoleAcquire
	RoleRelease = trace.RoleRelease
)

// NewProgram returns an empty program; add methods with AddMethod and unit
// tests with AddTest, then pass it to Infer.
func NewProgram(name, title string) *Program { return prog.New(name, title) }

// DefaultConfig mirrors the paper's default operating point: 3 rounds,
// Near = 1 ms (virtual), λ = 0.2, all hypotheses and feedback mechanisms
// enabled, 100 µs (virtual) injected delays, and a worker pool sized to
// runtime.GOMAXPROCS(0).
func DefaultConfig() Config { return core.DefaultConfig() }

// Infer runs the full SherLock loop — execute tests, extract windows,
// solve, perturb, repeat — and returns the inferred synchronizations.
// Within each round the per-test executions are dispatched across
// cfg.Parallelism workers; the result is identical for every parallelism
// level. ctx cancels the campaign between test executions.
func Infer(ctx context.Context, app *Program, cfg Config) (*Result, error) {
	return core.Infer(ctx, app, cfg)
}

// InferAll runs one inference campaign per application, campaigns
// executing concurrently. The result slice is indexed like apps; failed
// campaigns leave a nil entry and their errors are aggregated with
// errors.Join.
func InferAll(ctx context.Context, apps []*Program, cfg Config) ([]*Result, error) {
	return core.InferAll(ctx, apps, cfg)
}

// ScoreResult classifies an inference result against the program's ground
// truth, reproducing the paper's manual-inspection buckets.
func ScoreResult(app *Program, res *Result) *Score { return core.ScoreResult(app, res) }

// Apps returns the paper's eight benchmark applications (App-1..App-8) as
// synthetic equivalents with ground truth.
func Apps() []*Program { return apps.All() }

// AppByName returns one benchmark application by id ("App-1".."App-8").
func AppByName(name string) (*Program, error) { return apps.ByName(name) }

// SinkObserver wraps a span sink as an Observer whose Round callback is a
// no-op — the adapter for streaming a campaign's event log (for example
// SinkObserver(NewJSONLSink(f))).
func SinkObserver(s obs.Sink) Observer { return core.SinkObserver(s) }

// NewMemorySink returns an empty in-memory span sink.
func NewMemorySink() *MemorySink { return obs.NewMemorySink() }

// NewJSONLSink returns a sink writing one JSON object per span event to w.
// Safe for concurrent Emit calls; the caller owns w's lifetime.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// ParseJSONLLog decodes an event log written by a JSONLSink (the
// `sherlock -trace-out` format) back into span events.
func ParseJSONLLog(data []byte) ([]SpanEvent, error) { return obs.ParseJSONL(data) }

// BuildSpanTree reconstructs the deterministic span forest from events.
func BuildSpanTree(events []SpanEvent) []*SpanNode { return obs.BuildTree(events) }

// RenderSpanEvents returns the deterministic text rendering of an event
// stream: span forest plus counter totals, wall-clock fields excluded —
// byte-identical across runs and parallelism levels for the same campaign.
func RenderSpanEvents(events []SpanEvent) string { return obs.RenderEvents(events) }

// DefaultRaceConfig returns CompareDetectors' defaults (the paper's
// detection protocol: every test, a fixed run budget, deterministic seed).
func DefaultRaceConfig() RaceConfig { return race.DefaultCompareConfig() }

// RaceOption adjusts one CompareDetectors setting.
type RaceOption func(*RaceConfig)

// WithRaceRuns sets how many seeded executions each test gets per detector
// configuration.
func WithRaceRuns(n int) RaceOption { return func(c *RaceConfig) { c.Runs = n } }

// WithRaceSeed sets the base scheduler seed for the comparison.
func WithRaceSeed(seed int64) RaceOption { return func(c *RaceConfig) { c.Seed = seed } }

// WithRaceConfig replaces the whole configuration (applied before any
// other options in the same call).
func WithRaceConfig(cfg RaceConfig) RaceOption { return func(c *RaceConfig) { *c = cfg } }

// CompareDetectors runs the FastTrack race detector over the program's
// tests twice — once with the classic manually annotated synchronization
// list, once with the inferred set — and counts true/false first-reported
// races (the paper's Table 3). Pass Result.SyncKeys() as inferred; with no
// options it uses DefaultRaceConfig.
func CompareDetectors(ctx context.Context, app *Program, inferred SyncSet, opts ...RaceOption) (*RaceComparison, error) {
	cfg := DefaultRaceConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return race.Compare(ctx, app, inferred, cfg)
}

// DefaultTSVDConfig returns AnalyzeTSVD's defaults, mirroring the TSVD
// paper's operating point.
func DefaultTSVDConfig() TSVDConfig { return tsvd.DefaultConfig() }

// TSVDOption adjusts one AnalyzeTSVD setting.
type TSVDOption func(*TSVDConfig)

// WithTSVDRuns sets how many seeded executions feed the analysis.
func WithTSVDRuns(n int) TSVDOption { return func(c *TSVDConfig) { c.Runs = n } }

// WithTSVDSeed sets the base scheduler seed for the analysis.
func WithTSVDSeed(seed int64) TSVDOption { return func(c *TSVDConfig) { c.Seed = seed } }

// WithTSVDNear sets the physical-proximity window (virtual ns) under which
// two conflicting calls count as near misses.
func WithTSVDNear(near int64) TSVDOption { return func(c *TSVDConfig) { c.Near = near } }

// WithTSVDDelay sets the injected delay (virtual ns) used to probe
// delay-propagation.
func WithTSVDDelay(delay int64) TSVDOption { return func(c *TSVDConfig) { c.Delay = delay } }

// WithTSVDConfig replaces the whole configuration (applied before any
// other options in the same call).
func WithTSVDConfig(cfg TSVDConfig) TSVDOption { return func(c *TSVDConfig) { *c = cfg } }

// AnalyzeTSVD reproduces the Section 5.6 experiment: which conflicting
// thread-unsafe API-call pairs are provably synchronized, per TSVD's
// delay-propagation heuristic and per SherLock's inferred operations.
// Pass Result.SyncKeys() as inferred; with no options it uses
// DefaultTSVDConfig.
func AnalyzeTSVD(ctx context.Context, app *Program, inferred SyncSet, opts ...TSVDOption) (*TSVDResult, error) {
	cfg := DefaultTSVDConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return tsvd.Analyze(ctx, app, inferred, cfg)
}

// CaptureTrace executes one unit test of app under the given scheduler seed
// and returns its execution log — the raw material of inference. Traces
// serialize as JSON lines via (*Trace).Write and load with ReadTrace.
// Cancellation is prompt: the scheduler polls ctx between steps and the
// returned error matches errors.Is(err, ctx.Err()).
func CaptureTrace(ctx context.Context, app *Program, test *Test, seed int64) (*Trace, error) {
	res, err := sched.RunContext(ctx, app, test, sched.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// ReadTrace parses a trace serialized with (*Trace).Write.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// InferFromTraces runs window extraction and a single solve over previously
// captured in-memory traces — a thin convenience wrapper over
// InferFromSource with a SliceSource.
func InferFromTraces(ctx context.Context, traces []*Trace, cfg Config) (*Result, error) {
	return core.InferFromTraces(ctx, traces, cfg)
}

// InferFromSource is the primary offline entrypoint: window extraction and
// a single solve over a streaming TraceSource — the paper's log-analysis
// step without re-execution or Perturber feedback. Sources decode one
// trace at a time, so memory stays bounded by the largest single trace;
// a corpus (OpenCorpus) plugs in via Corpus.Source, in-memory traces via
// SliceSource (or the InferFromTraces shorthand).
func InferFromSource(ctx context.Context, src TraceSource, cfg Config) (*Result, error) {
	return core.InferFromSource(ctx, src, cfg)
}

// OpenCorpus opens (creating if needed) a content-addressed trace corpus
// at dir. Ingest captured traces with Corpus.Ingest and feed them back to
// inference with InferFromSource(ctx, corpus.Source(), cfg) — the
// capture-once-infer-many workflow.
func OpenCorpus(dir string) (*Corpus, error) { return store.Open(dir) }

// EncodeTrace returns the canonical compact binary encoding of a trace
// (the corpus blob format); DecodeTrace inverts it.
func EncodeTrace(t *Trace) ([]byte, error) { return store.EncodeTrace(t) }

// DecodeTrace parses a trace in the canonical binary encoding.
func DecodeTrace(data []byte) (*Trace, error) { return store.DecodeTrace(data) }
