// Package sherlock is a Go reproduction of "SherLock: Unsupervised
// Synchronization-Operation Inference" (Li, Chen, Lu, Musuvathi, Nath —
// ASPLOS 2021).
//
// SherLock infers which operations of a concurrent program act as
// synchronization — acquires and releases that induce happens-before
// edges — with no annotations: it executes the program's tests a few
// times under observation, collects acquire/release windows around
// conflicting accesses, encodes a set of synchronization properties and
// hypotheses as a linear program, and perturbs subsequent runs with
// targeted delays to sharpen the evidence.
//
// The package exposes the full pipeline:
//
//   - Program construction: build concurrent workloads with the statement
//     DSL in internal/prog, re-exported here via type aliases (Program,
//     Method, Test). The eight benchmark applications of the paper are
//     available through Apps and AppByName.
//   - Inference: Infer runs the Observer → Solver → Perturber loop and
//     returns the inferred operation set; InferAll batches whole
//     applications concurrently; ScoreResult classifies a result against
//     a program's ground truth.
//   - Consumers: CompareDetectors feeds an inferred SyncSet into a
//     FastTrack race detector next to a manually annotated baseline
//     (the paper's Manual_dr vs SherLock_dr); AnalyzeTSVD reproduces the
//     TSVD-enhancement study.
//
// Every entrypoint that executes tests takes a context.Context as its
// first argument; cancellation aborts a campaign between test executions
// and the returned error matches errors.Is(err, ctx.Err()). Within each
// round the per-test executions run on a bounded worker pool
// (Config.Parallelism, default GOMAXPROCS); results are bit-identical for
// every parallelism level.
//
// Quick start:
//
//	app := sherlock.NewProgram("demo", "Demo")
//	// ... add methods and tests (see examples/quickstart) ...
//	res, err := sherlock.Infer(context.Background(), app, sherlock.DefaultConfig())
//	for _, s := range res.Inferred {
//		fmt.Println(s.Role, s.Key.Display())
//	}
package sherlock

import (
	"context"
	"io"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/prog"
	"sherlock/internal/race"
	"sherlock/internal/sched"
	"sherlock/internal/store"
	"sherlock/internal/trace"
	"sherlock/internal/tsvd"
)

// Core types, re-exported.
type (
	// Program is a concurrent application under analysis.
	Program = prog.Program
	// Method is one application method.
	Method = prog.Method
	// Test is one unit test of a Program.
	Test = prog.Test
	// Truth is a program's ground-truth annotation (optional; used only
	// for scoring).
	Truth = prog.Truth

	// Config tunes an inference campaign (rounds, Near, λ, hypotheses,
	// parallelism, feedback toggles). Validate reports misconfigurations.
	Config = core.Config
	// Result is the outcome of Infer.
	Result = core.Result
	// InferredSync is one reported synchronization operation.
	InferredSync = core.InferredSync
	// Score classifies a Result against ground truth.
	Score = core.Score

	// Key names a static candidate operation ("write:Class::field",
	// "begin:Class::Method", ...).
	Key = trace.Key
	// Role is acquire or release.
	Role = trace.Role
	// SyncSet maps inferred synchronization operations to their roles —
	// the typed currency between Infer (via Result.SyncKeys) and the
	// consumers CompareDetectors and AnalyzeTSVD.
	SyncSet = trace.SyncSet

	// Trace is one test execution's log in the paper's schema.
	Trace = trace.Trace
	// TraceSource streams stored traces into the offline solve
	// (InferFromSource); Corpus.Source and SliceSource implement it.
	TraceSource = core.TraceSource
	// SliceSource adapts in-memory traces to TraceSource.
	SliceSource = core.SliceSource

	// Corpus is a content-addressed on-disk trace corpus (OpenCorpus):
	// binary blobs keyed by SHA-256 of their canonical encoding, with
	// dedup, a manifest index, and integrity verification.
	Corpus = store.Corpus
	// CorpusEntry is one corpus trace's index record.
	CorpusEntry = store.Entry

	// RaceComparison is a Manual_dr vs SherLock_dr detection outcome.
	RaceComparison = race.Comparison
	// TSVDResult is the outcome of the TSVD-enhancement analysis.
	TSVDResult = tsvd.Result
)

// Role values.
const (
	RoleAcquire = trace.RoleAcquire
	RoleRelease = trace.RoleRelease
)

// NewProgram returns an empty program; add methods with AddMethod and unit
// tests with AddTest, then pass it to Infer.
func NewProgram(name, title string) *Program { return prog.New(name, title) }

// DefaultConfig mirrors the paper's default operating point: 3 rounds,
// Near = 1 ms (virtual), λ = 0.2, all hypotheses and feedback mechanisms
// enabled, 100 µs (virtual) injected delays, and a worker pool sized to
// runtime.GOMAXPROCS(0).
func DefaultConfig() Config { return core.DefaultConfig() }

// Infer runs the full SherLock loop — execute tests, extract windows,
// solve, perturb, repeat — and returns the inferred synchronizations.
// Within each round the per-test executions are dispatched across
// cfg.Parallelism workers; the result is identical for every parallelism
// level. ctx cancels the campaign between test executions.
func Infer(ctx context.Context, app *Program, cfg Config) (*Result, error) {
	return core.Infer(ctx, app, cfg)
}

// InferAll runs one inference campaign per application, campaigns
// executing concurrently. The result slice is indexed like apps; failed
// campaigns leave a nil entry and their errors are aggregated with
// errors.Join.
func InferAll(ctx context.Context, apps []*Program, cfg Config) ([]*Result, error) {
	return core.InferAll(ctx, apps, cfg)
}

// ScoreResult classifies an inference result against the program's ground
// truth, reproducing the paper's manual-inspection buckets.
func ScoreResult(app *Program, res *Result) *Score { return core.ScoreResult(app, res) }

// Apps returns the paper's eight benchmark applications (App-1..App-8) as
// synthetic equivalents with ground truth.
func Apps() []*Program { return apps.All() }

// AppByName returns one benchmark application by id ("App-1".."App-8").
func AppByName(name string) (*Program, error) { return apps.ByName(name) }

// CompareDetectors runs the FastTrack race detector over the program's
// tests twice — once with the classic manually annotated synchronization
// list, once with the inferred set — and counts true/false first-reported
// races (the paper's Table 3). Pass Result.SyncKeys() as inferred.
func CompareDetectors(ctx context.Context, app *Program, inferred SyncSet) (*RaceComparison, error) {
	return race.Compare(ctx, app, inferred, race.DefaultCompareConfig())
}

// AnalyzeTSVD reproduces the Section 5.6 experiment: which conflicting
// thread-unsafe API-call pairs are provably synchronized, per TSVD's
// delay-propagation heuristic and per SherLock's inferred operations.
// Pass Result.SyncKeys() as inferred.
func AnalyzeTSVD(ctx context.Context, app *Program, inferred SyncSet) (*TSVDResult, error) {
	return tsvd.Analyze(ctx, app, inferred, tsvd.DefaultConfig())
}

// CaptureTrace executes one unit test of app under the given scheduler seed
// and returns its execution log — the raw material of inference. Traces
// serialize as JSON lines via (*Trace).Write and load with ReadTrace.
func CaptureTrace(ctx context.Context, app *Program, test *Test, seed int64) (*Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := sched.Run(app, test, sched.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// ReadTrace parses a trace serialized with (*Trace).Write.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// InferFromTraces runs window extraction and a single solve over previously
// captured traces — the paper's log-analysis step without re-execution or
// Perturber feedback. Use it to analyze logs from external instrumentation.
func InferFromTraces(ctx context.Context, traces []*Trace, cfg Config) (*Result, error) {
	return core.InferFromTraces(ctx, traces, cfg)
}

// InferFromSource is InferFromTraces over a streaming TraceSource — for
// example a trace corpus (OpenCorpus) whose traces are decoded one at a
// time, keeping memory bounded by the largest single trace.
func InferFromSource(ctx context.Context, src TraceSource, cfg Config) (*Result, error) {
	return core.InferFromSource(ctx, src, cfg)
}

// OpenCorpus opens (creating if needed) a content-addressed trace corpus
// at dir. Ingest captured traces with Corpus.Ingest and feed them back to
// inference with InferFromSource(ctx, corpus.Source(), cfg) — the
// capture-once-infer-many workflow.
func OpenCorpus(dir string) (*Corpus, error) { return store.Open(dir) }

// EncodeTrace returns the canonical compact binary encoding of a trace
// (the corpus blob format); DecodeTrace inverts it.
func EncodeTrace(t *Trace) ([]byte, error) { return store.EncodeTrace(t) }

// DecodeTrace parses a trace in the canonical binary encoding.
func DecodeTrace(data []byte) (*Trace, error) { return store.DecodeTrace(data) }

// ---------------------------------------------------------------------------
// Deprecated context-less wrappers, kept for pre-context callers.
// ---------------------------------------------------------------------------

// InferBackground is Infer with context.Background().
//
// Deprecated: use Infer, which takes a context.Context.
func InferBackground(app *Program, cfg Config) (*Result, error) {
	return Infer(context.Background(), app, cfg)
}

// InferFromTracesBackground is InferFromTraces with context.Background().
//
// Deprecated: use InferFromTraces, which takes a context.Context.
func InferFromTracesBackground(traces []*Trace, cfg Config) (*Result, error) {
	return InferFromTraces(context.Background(), traces, cfg)
}

// CompareDetectorsBackground is CompareDetectors with context.Background().
//
// Deprecated: use CompareDetectors, which takes a context.Context.
func CompareDetectorsBackground(app *Program, inferred SyncSet) (*RaceComparison, error) {
	return CompareDetectors(context.Background(), app, inferred)
}

// AnalyzeTSVDBackground is AnalyzeTSVD with context.Background().
//
// Deprecated: use AnalyzeTSVD, which takes a context.Context.
func AnalyzeTSVDBackground(app *Program, inferred SyncSet) (*TSVDResult, error) {
	return AnalyzeTSVD(context.Background(), app, inferred)
}

// CaptureTraceBackground is CaptureTrace with context.Background().
//
// Deprecated: use CaptureTrace, which takes a context.Context.
func CaptureTraceBackground(app *Program, test *Test, seed int64) (*Trace, error) {
	return CaptureTrace(context.Background(), app, test, seed)
}
