package sherlock

import (
	"bytes"
	"context"
	"testing"

	"sherlock/internal/prog"
)

// buildDemo constructs a small program through the public facade.
func buildDemo() *Program {
	app := NewProgram("facade-demo", "FacadeDemo")
	app.AddMethod("D.P::Produce",
		prog.CpJ(400, 0.7),
		prog.Wr("D.P::data", "p", 1),
		prog.Cp(50),
		prog.Wr("D.P::ready", "p", 1),
	)
	app.AddMethod("D.P::Consume",
		prog.Spin("D.P::ready", "p", 1, 200),
		prog.Cp(30),
		prog.Rd("D.P::data", "p"),
	)
	app.AddTest("T",
		prog.Go(prog.ForkThread, "D.P::Consume", "p", "h1"),
		prog.Go(prog.ForkThread, "D.P::Produce", "p", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	return app
}

func TestFacadeInfer(t *testing.T) {
	app := buildDemo()
	res, err := Infer(context.Background(), app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	syncs := res.SyncKeys()
	if syncs["write:D.P::ready"] != RoleRelease {
		t.Errorf("flag write not inferred as release: %v", res.Inferred)
	}
	if syncs["read:D.P::ready"] != RoleAcquire {
		t.Errorf("flag read not inferred as acquire: %v", res.Inferred)
	}
}

func TestFacadeCaptureAndOfflineInfer(t *testing.T) {
	app := buildDemo()
	var traces []*Trace
	for seed := int64(1); seed <= 3; seed++ {
		tr, err := CaptureTrace(context.Background(), app, app.Tests[0], seed)
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip each trace through its serialized form.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, back)
	}
	res, err := InferFromTraces(context.Background(), traces, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncKeys()["write:D.P::ready"] != RoleRelease {
		t.Errorf("offline inference missed the flag release: %v", res.Inferred)
	}
}

func TestFacadeBenchmarkApps(t *testing.T) {
	if len(Apps()) != 8 {
		t.Fatal("benchmark registry incomplete")
	}
	app, err := AppByName("App-7")
	if err != nil {
		t.Fatal(err)
	}
	if app.Title != "Stastd" {
		t.Errorf("App-7 title = %q", app.Title)
	}
	if _, err := AppByName("nope"); err == nil {
		t.Error("unknown app must error")
	}
}

func TestFacadeDetectorsAndTSVD(t *testing.T) {
	app, err := AppByName("App-7")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Infer(context.Background(), app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := CompareDetectors(context.Background(), app, res.SyncKeys())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.App != "App-7" {
		t.Errorf("comparison app = %q", cmp.App)
	}
	ts, err := AnalyzeTSVD(context.Background(), app, res.SyncKeys())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Conflicting) == 0 {
		t.Error("App-7 has a known conflicting unsafe pair")
	}
}

func TestFacadeScoring(t *testing.T) {
	app, err := AppByName("App-2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Infer(context.Background(), app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	score := ScoreResult(app, res)
	if score.Precision() < 0.8 {
		t.Errorf("App-2 precision = %.2f", score.Precision())
	}
}
